#include "js/parser.hpp"

#include <utility>

#include "js/errors.hpp"
#include "js/lexer.hpp"

namespace nakika::js {

namespace {

class parser {
 public:
  parser(std::vector<token> tokens, std::string_view name)
      : tokens_(std::move(tokens)), name_(name) {}

  program_ptr run() {
    auto prog = std::make_shared<program>();
    prog->name = name_;
    while (!at_end()) {
      prog->body.push_back(parse_statement());
    }
    return prog;
  }

 private:
  // ----- token helpers -------------------------------------------------------

  [[nodiscard]] const token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at_end() const { return peek().kind == token_kind::end_of_input; }
  const token& advance() {
    const token& t = tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
    last_line_ = t.line;
    return t;
  }

  bool match_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool match_keyword(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_punct(std::string_view p) {
    if (!match_punct(p)) {
      fail(std::string("expected '") + std::string(p) + "', got '" + peek().text + "'");
    }
  }

  std::string expect_identifier() {
    if (peek().kind != token_kind::identifier) {
      fail("expected identifier, got '" + peek().text + "'");
    }
    return advance().text;
  }

  // Approximate automatic-semicolon-insertion: a statement terminator is a
  // ';', the statement may end implicitly before '}' / end of input, or a
  // line break separates it from the next token (newline ASI — the paper's
  // Fig. 5 script relies on this).
  void expect_semicolon() {
    if (match_punct(";")) return;
    if (peek().is_punct("}") || at_end()) return;
    if (peek().line > last_line_) return;
    fail("expected ';' before '" + peek().text + "'");
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw script_error(script_error_kind::syntax,
                       name_ + ":" + std::to_string(peek().line) + ": " + message,
                       peek().line);
  }

  // ----- statements ----------------------------------------------------------

  stmt_ptr parse_statement() {
    const token& t = peek();
    if (t.is_punct("{")) return parse_block();
    if (t.is_punct(";")) {
      advance();
      return std::make_unique<empty_stmt>(t.line);
    }
    if (t.kind == token_kind::keyword) {
      if (t.text == "var") return parse_var();
      if (t.text == "if") return parse_if();
      if (t.text == "while") return parse_while();
      if (t.text == "do") return parse_do_while();
      if (t.text == "for") return parse_for();
      if (t.text == "return") return parse_return();
      if (t.text == "break") {
        advance();
        expect_semicolon();
        return std::make_unique<break_stmt>(t.line);
      }
      if (t.text == "continue") {
        advance();
        expect_semicolon();
        return std::make_unique<continue_stmt>(t.line);
      }
      if (t.text == "function") return parse_function_decl();
      if (t.text == "throw") {
        advance();
        auto value = parse_expression();
        expect_semicolon();
        return std::make_unique<throw_stmt>(std::move(value), t.line);
      }
      if (t.text == "try") return parse_try();
      if (t.text == "switch") return parse_switch();
    }
    auto e = parse_expression();
    const int line = t.line;
    expect_semicolon();
    return std::make_unique<expr_stmt>(std::move(e), line);
  }

  stmt_ptr parse_block() {
    const int line = peek().line;
    expect_punct("{");
    auto block = std::make_unique<block_stmt>(line);
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    expect_punct("}");
    return block;
  }

  stmt_ptr parse_var() {
    const int line = peek().line;
    advance();  // var
    auto decl = parse_var_declarators(line);
    expect_semicolon();
    return decl;
  }

  std::unique_ptr<var_decl> parse_var_declarators(int line) {
    auto decl = std::make_unique<var_decl>(line);
    while (true) {
      std::string name = expect_identifier();
      expr_ptr init;
      if (match_punct("=")) init = parse_assignment();
      decl->declarations.emplace_back(std::move(name), std::move(init));
      if (!match_punct(",")) break;
    }
    return decl;
  }

  stmt_ptr parse_if() {
    const int line = peek().line;
    advance();  // if
    expect_punct("(");
    auto node = std::make_unique<if_stmt>(line);
    node->condition = parse_expression();
    expect_punct(")");
    node->then_branch = parse_statement();
    if (match_keyword("else")) node->else_branch = parse_statement();
    return node;
  }

  stmt_ptr parse_while() {
    const int line = peek().line;
    advance();  // while
    expect_punct("(");
    auto node = std::make_unique<while_stmt>(line);
    node->condition = parse_expression();
    expect_punct(")");
    node->body = parse_statement();
    return node;
  }

  stmt_ptr parse_do_while() {
    const int line = peek().line;
    advance();  // do
    auto node = std::make_unique<do_while_stmt>(line);
    node->body = parse_statement();
    if (!match_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    node->condition = parse_expression();
    expect_punct(")");
    expect_semicolon();
    return node;
  }

  stmt_ptr parse_for() {
    const int line = peek().line;
    advance();  // for
    expect_punct("(");

    // Distinguish `for (var x in e)`, `for (x in e)`, and the classic form.
    if (peek().is_keyword("var") && peek(1).kind == token_kind::identifier &&
        peek(2).is_keyword("in")) {
      advance();  // var
      auto node = std::make_unique<for_in_stmt>(line);
      node->variable = expect_identifier();
      node->declares = true;
      advance();  // in
      node->object = parse_expression();
      expect_punct(")");
      node->body = parse_statement();
      return node;
    }
    if (peek().kind == token_kind::identifier && peek(1).is_keyword("in")) {
      auto node = std::make_unique<for_in_stmt>(line);
      node->variable = expect_identifier();
      advance();  // in
      node->object = parse_expression();
      expect_punct(")");
      node->body = parse_statement();
      return node;
    }

    auto node = std::make_unique<for_stmt>(line);
    if (!peek().is_punct(";")) {
      if (peek().is_keyword("var")) {
        advance();
        node->init = parse_var_declarators(line);
      } else {
        node->init = std::make_unique<expr_stmt>(parse_expression(), line);
      }
    }
    expect_punct(";");
    if (!peek().is_punct(";")) node->condition = parse_expression();
    expect_punct(";");
    if (!peek().is_punct(")")) node->step = parse_expression();
    expect_punct(")");
    node->body = parse_statement();
    return node;
  }

  stmt_ptr parse_return() {
    const int line = peek().line;
    advance();  // return
    auto node = std::make_unique<return_stmt>(line);
    if (!peek().is_punct(";") && !peek().is_punct("}") && !at_end()) {
      node->value = parse_expression();
    }
    expect_semicolon();
    return node;
  }

  stmt_ptr parse_function_decl() {
    const int line = peek().line;
    advance();  // function
    auto fn = parse_function_rest(line, /*require_name=*/true);
    auto decl = std::make_unique<function_decl>(line);
    decl->function = std::move(fn);
    return decl;
  }

  stmt_ptr parse_try() {
    const int line = peek().line;
    advance();  // try
    auto node = std::make_unique<try_stmt>(line);
    node->try_block = parse_block();
    if (match_keyword("catch")) {
      expect_punct("(");
      node->catch_name = expect_identifier();
      expect_punct(")");
      node->catch_block = parse_block();
    }
    if (match_keyword("finally")) {
      node->finally_block = parse_block();
    }
    if (!node->catch_block && !node->finally_block) {
      fail("try requires catch or finally");
    }
    return node;
  }

  stmt_ptr parse_switch() {
    const int line = peek().line;
    advance();  // switch
    expect_punct("(");
    auto node = std::make_unique<switch_stmt>(line);
    node->discriminant = parse_expression();
    expect_punct(")");
    expect_punct("{");
    bool saw_default = false;
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated switch");
      switch_stmt::case_clause clause;
      if (match_keyword("case")) {
        clause.test = parse_expression();
      } else if (match_keyword("default")) {
        if (saw_default) fail("duplicate default clause");
        saw_default = true;
      } else {
        fail("expected 'case' or 'default'");
      }
      expect_punct(":");
      while (!peek().is_punct("}") && !peek().is_keyword("case") &&
             !peek().is_keyword("default")) {
        clause.body.push_back(parse_statement());
      }
      node->cases.push_back(std::move(clause));
    }
    expect_punct("}");
    return node;
  }

  // ----- expressions ---------------------------------------------------------

  expr_ptr parse_expression() { return parse_assignment(); }

  expr_ptr parse_assignment() {
    auto left = parse_conditional();
    static constexpr const char* assign_ops[] = {"=",  "+=", "-=", "*=", "/=", "%=",
                                                 "&=", "|=", "^=", "<<=", ">>="};
    for (const char* op : assign_ops) {
      if (peek().is_punct(op)) {
        const int line = peek().line;
        advance();
        if (left->kind != expr_kind::identifier && left->kind != expr_kind::member &&
            left->kind != expr_kind::index) {
          fail("invalid assignment target");
        }
        auto right = parse_assignment();
        return std::make_unique<assign_expr>(op, std::move(left), std::move(right), line);
      }
    }
    return left;
  }

  expr_ptr parse_conditional() {
    auto cond = parse_logical_or();
    if (match_punct("?")) {
      const int line = peek().line;
      auto t = parse_assignment();
      expect_punct(":");
      auto f = parse_assignment();
      return std::make_unique<conditional_expr>(std::move(cond), std::move(t), std::move(f),
                                                line);
    }
    return cond;
  }

  expr_ptr parse_logical_or() {
    auto left = parse_logical_and();
    while (peek().is_punct("||")) {
      const int line = advance().line;
      auto right = parse_logical_and();
      left = std::make_unique<logical_expr>("||", std::move(left), std::move(right), line);
    }
    return left;
  }

  expr_ptr parse_logical_and() {
    auto left = parse_bitwise_or();
    while (peek().is_punct("&&")) {
      const int line = advance().line;
      auto right = parse_bitwise_or();
      left = std::make_unique<logical_expr>("&&", std::move(left), std::move(right), line);
    }
    return left;
  }

  expr_ptr parse_bitwise_or() {
    auto left = parse_bitwise_xor();
    while (peek().is_punct("|")) {
      const int line = advance().line;
      left = std::make_unique<binary_expr>("|", std::move(left), parse_bitwise_xor(), line);
    }
    return left;
  }

  expr_ptr parse_bitwise_xor() {
    auto left = parse_bitwise_and();
    while (peek().is_punct("^")) {
      const int line = advance().line;
      left = std::make_unique<binary_expr>("^", std::move(left), parse_bitwise_and(), line);
    }
    return left;
  }

  expr_ptr parse_bitwise_and() {
    auto left = parse_equality();
    while (peek().is_punct("&")) {
      const int line = advance().line;
      left = std::make_unique<binary_expr>("&", std::move(left), parse_equality(), line);
    }
    return left;
  }

  expr_ptr parse_equality() {
    auto left = parse_relational();
    while (peek().is_punct("==") || peek().is_punct("!=") || peek().is_punct("===") ||
           peek().is_punct("!==")) {
      const token t = advance();
      left = std::make_unique<binary_expr>(t.text, std::move(left), parse_relational(), t.line);
    }
    return left;
  }

  expr_ptr parse_relational() {
    auto left = parse_shift();
    while (true) {
      if (peek().is_punct("<") || peek().is_punct(">") || peek().is_punct("<=") ||
          peek().is_punct(">=")) {
        const token t = advance();
        left = std::make_unique<binary_expr>(t.text, std::move(left), parse_shift(), t.line);
      } else if (peek().is_keyword("in") || peek().is_keyword("instanceof")) {
        const token t = advance();
        left = std::make_unique<binary_expr>(t.text, std::move(left), parse_shift(), t.line);
      } else {
        return left;
      }
    }
  }

  expr_ptr parse_shift() {
    auto left = parse_additive();
    while (peek().is_punct("<<") || peek().is_punct(">>") || peek().is_punct(">>>")) {
      const token t = advance();
      left = std::make_unique<binary_expr>(t.text, std::move(left), parse_additive(), t.line);
    }
    return left;
  }

  expr_ptr parse_additive() {
    auto left = parse_multiplicative();
    while (peek().is_punct("+") || peek().is_punct("-")) {
      const token t = advance();
      left =
          std::make_unique<binary_expr>(t.text, std::move(left), parse_multiplicative(), t.line);
    }
    return left;
  }

  expr_ptr parse_multiplicative() {
    auto left = parse_unary();
    while (peek().is_punct("*") || peek().is_punct("/") || peek().is_punct("%")) {
      const token t = advance();
      left = std::make_unique<binary_expr>(t.text, std::move(left), parse_unary(), t.line);
    }
    return left;
  }

  expr_ptr parse_unary() {
    const token& t = peek();
    if (t.is_punct("!") || t.is_punct("-") || t.is_punct("+") || t.is_punct("~")) {
      advance();
      return std::make_unique<unary_expr>(t.text, parse_unary(), t.line);
    }
    if (t.is_keyword("typeof") || t.is_keyword("delete")) {
      advance();
      return std::make_unique<unary_expr>(t.text, parse_unary(), t.line);
    }
    if (t.is_punct("++") || t.is_punct("--")) {
      advance();
      auto target = parse_unary();
      if (target->kind != expr_kind::identifier && target->kind != expr_kind::member &&
          target->kind != expr_kind::index) {
        fail("invalid update target");
      }
      return std::make_unique<update_expr>(t.text, /*prefix=*/true, std::move(target), t.line);
    }
    return parse_postfix();
  }

  expr_ptr parse_postfix() {
    auto operand = parse_call_member();
    if (peek().is_punct("++") || peek().is_punct("--")) {
      const token t = advance();
      if (operand->kind != expr_kind::identifier && operand->kind != expr_kind::member &&
          operand->kind != expr_kind::index) {
        fail("invalid update target");
      }
      return std::make_unique<update_expr>(t.text, /*prefix=*/false, std::move(operand),
                                           t.line);
    }
    return operand;
  }

  expr_ptr parse_call_member() {
    expr_ptr node;
    if (peek().is_keyword("new")) {
      const int line = advance().line;
      auto callee = parse_member_chain(parse_primary());
      auto ne = std::make_unique<new_expr>(std::move(callee), line);
      if (peek().is_punct("(")) {
        ne->args = parse_arguments();
      }
      node = std::move(ne);
    } else {
      node = parse_primary();
    }
    // Any mix of .prop, [expr], and (args) chains.
    while (true) {
      if (peek().is_punct(".")) {
        const int line = advance().line;
        std::string prop = parse_property_name();
        node = std::make_unique<member_expr>(std::move(node), std::move(prop), line);
      } else if (peek().is_punct("[")) {
        const int line = advance().line;
        auto idx = parse_expression();
        expect_punct("]");
        node = std::make_unique<index_expr>(std::move(node), std::move(idx), line);
      } else if (peek().is_punct("(")) {
        const int line = peek().line;
        auto call = std::make_unique<call_expr>(std::move(node), line);
        call->args = parse_arguments();
        node = std::move(call);
      } else {
        return node;
      }
    }
  }

  // Member chain without calls, for `new a.b.C(args)` — the callee binds
  // tighter than the argument list.
  expr_ptr parse_member_chain(expr_ptr node) {
    while (true) {
      if (peek().is_punct(".")) {
        const int line = advance().line;
        std::string prop = parse_property_name();
        node = std::make_unique<member_expr>(std::move(node), std::move(prop), line);
      } else if (peek().is_punct("[")) {
        const int line = advance().line;
        auto idx = parse_expression();
        expect_punct("]");
        node = std::make_unique<index_expr>(std::move(node), std::move(idx), line);
      } else {
        return node;
      }
    }
  }

  // Property names after '.' may be keywords (e.g. resp.delete is unusual but
  // x.in shows up with header maps); accept identifiers and keywords.
  std::string parse_property_name() {
    if (peek().kind == token_kind::identifier || peek().kind == token_kind::keyword) {
      return advance().text;
    }
    fail("expected property name after '.'");
  }

  std::vector<expr_ptr> parse_arguments() {
    expect_punct("(");
    std::vector<expr_ptr> args;
    if (!peek().is_punct(")")) {
      while (true) {
        args.push_back(parse_assignment());
        if (!match_punct(",")) break;
      }
    }
    expect_punct(")");
    return args;
  }

  expr_ptr parse_primary() {
    const token& t = peek();
    switch (t.kind) {
      case token_kind::number:
        advance();
        return std::make_unique<number_lit>(t.number, t.line);
      case token_kind::string:
        advance();
        return std::make_unique<string_lit>(t.text, t.line);
      case token_kind::identifier:
        advance();
        return std::make_unique<identifier>(t.text, t.line);
      case token_kind::keyword:
        if (t.text == "true" || t.text == "false") {
          advance();
          return std::make_unique<bool_lit>(t.text == "true", t.line);
        }
        if (t.text == "null") {
          advance();
          return std::make_unique<null_lit>(t.line);
        }
        if (t.text == "undefined") {
          advance();
          return std::make_unique<undefined_lit>(t.line);
        }
        if (t.text == "this") {
          advance();
          return std::make_unique<this_expr>(t.line);
        }
        if (t.text == "function") {
          advance();
          return parse_function_rest(t.line, /*require_name=*/false);
        }
        fail("unexpected keyword '" + t.text + "'");
      case token_kind::punctuator:
        if (t.text == "(") {
          advance();
          auto inner = parse_expression();
          expect_punct(")");
          return inner;
        }
        if (t.text == "[") return parse_array_literal();
        if (t.text == "{") return parse_object_literal();
        fail("unexpected token '" + t.text + "'");
      case token_kind::end_of_input:
        fail("unexpected end of input");
    }
    fail("unexpected token");
  }

  std::unique_ptr<function_lit> parse_function_rest(int line, bool require_name) {
    auto fn = std::make_unique<function_lit>(line);
    if (peek().kind == token_kind::identifier) {
      fn->name = advance().text;
    } else if (require_name) {
      fail("function declaration requires a name");
    }
    expect_punct("(");
    if (!peek().is_punct(")")) {
      while (true) {
        fn->params.push_back(expect_identifier());
        if (!match_punct(",")) break;
      }
    }
    expect_punct(")");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated function body");
      fn->body.push_back(parse_statement());
    }
    expect_punct("}");
    return fn;
  }

  expr_ptr parse_array_literal() {
    const int line = peek().line;
    expect_punct("[");
    auto arr = std::make_unique<array_lit>(line);
    if (!peek().is_punct("]")) {
      while (true) {
        arr->elements.push_back(parse_assignment());
        if (!match_punct(",")) break;
        if (peek().is_punct("]")) break;  // trailing comma
      }
    }
    expect_punct("]");
    return arr;
  }

  expr_ptr parse_object_literal() {
    const int line = peek().line;
    expect_punct("{");
    auto obj = std::make_unique<object_lit>(line);
    if (!peek().is_punct("}")) {
      while (true) {
        std::string key;
        if (peek().kind == token_kind::string) {
          key = advance().text;
        } else if (peek().kind == token_kind::identifier ||
                   peek().kind == token_kind::keyword) {
          key = advance().text;
        } else if (peek().kind == token_kind::number) {
          key = advance().text;
        } else {
          fail("expected property key");
        }
        expect_punct(":");
        obj->entries.emplace_back(std::move(key), parse_assignment());
        if (!match_punct(",")) break;
        if (peek().is_punct("}")) break;  // trailing comma
      }
    }
    expect_punct("}");
    return obj;
  }

  std::vector<token> tokens_;
  std::string name_;
  std::size_t pos_ = 0;
  int last_line_ = 0;
};

}  // namespace

program_ptr parse_program(std::string_view source, std::string_view name) {
  return parser(tokenize(source), name).run();
}

}  // namespace nakika::js
