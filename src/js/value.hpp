// Value and object model. Values are small tagged unions; everything heap-
// allocated (objects, arrays, functions, byte arrays) lives behind a shared
// pointer. Objects carry a prototype pointer, insertion-ordered properties,
// and per-kind payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "js/ast.hpp"
#include "util/bytes.hpp"

namespace nakika::js {

class object;
using object_ptr = std::shared_ptr<object>;

class interpreter;
class environment;
using env_ptr = std::shared_ptr<environment>;
struct compiled_fn;  // bytecode.hpp: compiled (VM) function payload
class shape_table;   // shapes.hpp: per-context hidden-class registry

// Process-unique id allocator shared by objects and shapes. Never repeats, so
// a per-context inline cache keyed on either kind of id can never be fooled
// by an id minted elsewhere (including by a different context's shape table).
[[nodiscard]] std::uint64_t next_object_id();

class value {
 public:
  struct undefined_t {
    bool operator==(const undefined_t&) const = default;
  };
  struct null_t {
    bool operator==(const null_t&) const = default;
  };

  value() : v_(undefined_t{}) {}
  static value undefined() { return value(); }
  static value null() {
    value v;
    v.v_ = null_t{};
    return v;
  }
  static value boolean(bool b) {
    value v;
    v.v_ = b;
    return v;
  }
  static value number(double d) {
    value v;
    v.v_ = d;
    return v;
  }
  static value string(std::string s) {
    value v;
    v.v_ = std::move(s);
    return v;
  }
  static value object(object_ptr o) {
    value v;
    v.v_ = std::move(o);
    return v;
  }

  [[nodiscard]] bool is_undefined() const { return std::holds_alternative<undefined_t>(v_); }
  [[nodiscard]] bool is_null() const { return std::holds_alternative<null_t>(v_); }
  [[nodiscard]] bool is_nullish() const { return is_undefined() || is_null(); }
  [[nodiscard]] bool is_boolean() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<object_ptr>(v_); }

  [[nodiscard]] bool as_boolean() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const object_ptr& as_object() const { return std::get<object_ptr>(v_); }

  // JS ToBoolean.
  [[nodiscard]] bool truthy() const;
  // JS ToNumber (subset: strings parse as decimal, objects are NaN unless
  // arrays of length 1 — we keep it simple and return NaN).
  [[nodiscard]] double to_number() const;
  // JS ToString (objects stringify as JSON-ish for arrays, "[object Object]"
  // for plain objects, source-less "function" for functions).
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const char* type_name() const;  // typeof semantics

  [[nodiscard]] bool strict_equals(const value& other) const;
  [[nodiscard]] bool loose_equals(const value& other) const;

 private:
  std::variant<undefined_t, null_t, bool, double, std::string, object_ptr> v_;
};

using native_fn =
    std::function<value(interpreter&, const value& this_value, std::span<value> args)>;

enum class object_kind { plain, array, function, native_function, byte_array };

// Heap accounting hook. Objects allocated through a context carry a charge
// that is released when the object dies, so the sandbox sees live bytes.
struct heap_charge {
  std::shared_ptr<std::size_t> counter;
  std::size_t amount = 0;

  heap_charge() = default;
  heap_charge(std::shared_ptr<std::size_t> c, std::size_t a)
      : counter(std::move(c)), amount(a) {
    if (counter) *counter += amount;
  }
  ~heap_charge() { release(); }
  heap_charge(const heap_charge&) = delete;
  heap_charge& operator=(const heap_charge&) = delete;
  heap_charge(heap_charge&& other) noexcept
      : counter(std::move(other.counter)), amount(other.amount) {
    other.counter = nullptr;
    other.amount = 0;
  }
  heap_charge& operator=(heap_charge&& other) noexcept {
    if (this != &other) {
      release();
      counter = std::move(other.counter);
      amount = other.amount;
      other.counter = nullptr;
      other.amount = 0;
    }
    return *this;
  }

  void add(std::size_t more) {
    amount += more;
    if (counter) *counter += more;
  }
  void release() {
    if (counter) *counter -= amount;
    counter = nullptr;
    amount = 0;
  }
};

// GC contract (js/gc.hpp): the cycle collector traverses exactly these owning
// edges — `proto`, `props[i].val`, `elements[i]`, `closure`, `captures[i]` —
// and severs them when an object is swept. Adding a new field that OWNS other
// script objects without teaching gc_heap::visit_edges about it is safe but
// leaky (the referenced objects merely look externally referenced and are
// kept); counting any edge twice there would be unsound.
class object : public std::enable_shared_from_this<object> {
 public:
  explicit object(object_kind k);
  ~object();

  object_kind kind;
  object_ptr proto;  // prototype chain; may be null

  // --- inline-cache identity ---
  // `id` never repeats across the process (so a cache entry can never alias a
  // recycled address) and `shape_gen` bumps on every structural change (own
  // property inserted or erased). A VM inline cache that recorded (id,
  // shape_gen, prop index) may read/write props[index].val directly while
  // both still match: indices only move when the shape changes. In-place
  // value writes deliberately do NOT bump the generation.
  std::uint64_t id = 0;
  std::uint32_t shape_gen = 0;

  // --- shape (hidden class) ---
  // Objects allocated through a context share its shape table; each own-prop
  // append transitions shape_id along the table's tree, so same-literal
  // objects converge on the same id and a shape-keyed cache hits across the
  // whole stream. shape_id == 0 is dictionary mode (deleted-from objects,
  // table overflow, or engine-internal objects built outside any context);
  // dictionary objects fall back to the (id, shape_gen) identity keying.
  std::shared_ptr<shape_table> shapes;
  std::uint64_t shape_id = 0;

  // Adopts `table`'s root shape. Only meaningful on a fresh object (no own
  // properties yet); called by context::make_* right after construction.
  void attach_shape(std::shared_ptr<shape_table> table);
  // Leaves the shape system for good (property delete, GC sweep).
  void demote_to_dictionary();

  // --- property storage (insertion-ordered; scripts' objects are small) ---
  struct property {
    std::string key;
    value val;
  };
  std::vector<property> props;

  // Finds an own property; nullptr if absent.
  [[nodiscard]] value* find_own(std::string_view key);
  [[nodiscard]] const value* find_own(std::string_view key) const;
  // Index of an own property, or -1 (for inline-cache fills).
  [[nodiscard]] int own_index(std::string_view key) const;
  // Walks the prototype chain; returns undefined if absent anywhere.
  [[nodiscard]] value get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  // Creates or overwrites an own property.
  void set(std::string_view key, value v);
  // Removes an own property; true if it existed.
  bool erase(std::string_view key);

  // --- array payload ---
  std::vector<value> elements;

  // --- function payload (tree-walker flavor) ---
  const function_lit* fn = nullptr;  // borrowed from `owner`'s AST
  program_ptr owner;                 // keeps the AST alive
  env_ptr closure;

  // --- function payload (bytecode flavor) ---
  // Exactly one of `fn` / `code` is set for kind == function. Compiled
  // functions carry their captured bindings as shared cells instead of an
  // environment chain.
  std::shared_ptr<const compiled_fn> code;
  std::vector<std::shared_ptr<value>> captures;

  // --- native function payload ---
  native_fn native;
  std::string name;  // diagnostic name for functions and vocabulary objects

  // --- byte array payload ---
  util::byte_buffer bytes;

  heap_charge charge;

  [[nodiscard]] bool callable() const {
    return kind == object_kind::function || kind == object_kind::native_function;
  }
};

// Convenience constructors that do NOT charge any heap budget — used for
// engine-internal structures (prototypes, vocabularies). Script-visible
// allocation goes through context::make_* which charges.
[[nodiscard]] object_ptr make_plain_object();
[[nodiscard]] object_ptr make_array_object();
[[nodiscard]] object_ptr make_native_function(std::string name, native_fn fn);
[[nodiscard]] object_ptr make_byte_array_object();

}  // namespace nakika::js
