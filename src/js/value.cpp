#include "js/value.hpp"

#include <atomic>
#include <charconv>
#include <cmath>

#include "js/shapes.hpp"
#include "util/strings.hpp"

namespace nakika::js {

bool value::truthy() const {
  if (is_undefined() || is_null()) return false;
  if (is_boolean()) return as_boolean();
  if (is_number()) {
    const double d = as_number();
    return d != 0.0 && !std::isnan(d);
  }
  if (is_string()) return !as_string().empty();
  return true;  // objects are always truthy
}

double value::to_number() const {
  if (is_number()) return as_number();
  if (is_boolean()) return as_boolean() ? 1.0 : 0.0;
  if (is_null()) return 0.0;
  if (is_string()) {
    const auto d = util::parse_double(as_string());
    if (d) return *d;
    if (util::trim(as_string()).empty()) return 0.0;
    return std::nan("");
  }
  if (is_object()) {
    const auto& obj = as_object();
    // Arrays of a single numeric element convert like JS ([5] -> 5).
    if (obj->kind == object_kind::array && obj->elements.size() == 1) {
      return obj->elements[0].to_number();
    }
    if (obj->kind == object_kind::array && obj->elements.empty()) return 0.0;
    if (obj->kind == object_kind::byte_array) {
      return std::nan("");
    }
  }
  return std::nan("");
}

namespace {
std::string number_to_string(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  // Integers print without a decimal point, like JS. to_chars instead of
  // snprintf: integer formatting is on the hot path of every number-to-key
  // coercion ('k' + i, obj[n]), and the locale-aware printf machinery costs
  // ~10x the digit emission.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    const auto n = static_cast<std::int64_t>(d);
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), n);
    return std::string(buf, end);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}
}  // namespace

std::string value::to_string() const {
  if (is_undefined()) return "undefined";
  if (is_null()) return "null";
  if (is_boolean()) return as_boolean() ? "true" : "false";
  if (is_number()) return number_to_string(as_number());
  if (is_string()) return as_string();
  const auto& obj = as_object();
  switch (obj->kind) {
    case object_kind::array: {
      std::string out;
      for (std::size_t i = 0; i < obj->elements.size(); ++i) {
        if (i > 0) out.push_back(',');
        const value& e = obj->elements[i];
        if (!e.is_nullish()) out += e.to_string();
      }
      return out;
    }
    case object_kind::function:
    case object_kind::native_function:
      return "function " + obj->name + "() { [code] }";
    case object_kind::byte_array:
      return obj->bytes.str();
    case object_kind::plain:
      return "[object Object]";
  }
  return "[object Object]";
}

const char* value::type_name() const {
  if (is_undefined()) return "undefined";
  if (is_null()) return "object";  // JS quirk preserved
  if (is_boolean()) return "boolean";
  if (is_number()) return "number";
  if (is_string()) return "string";
  return as_object()->callable() ? "function" : "object";
}

bool value::strict_equals(const value& other) const {
  if (is_undefined() && other.is_undefined()) return true;
  if (is_null() && other.is_null()) return true;
  if (is_boolean() && other.is_boolean()) return as_boolean() == other.as_boolean();
  if (is_number() && other.is_number()) return as_number() == other.as_number();
  if (is_string() && other.is_string()) return as_string() == other.as_string();
  if (is_object() && other.is_object()) return as_object() == other.as_object();
  return false;
}

bool value::loose_equals(const value& other) const {
  if (is_nullish() && other.is_nullish()) return true;
  if (is_nullish() || other.is_nullish()) return false;
  if (v_.index() == other.v_.index()) return strict_equals(other);
  // Mixed types coerce numerically, except string-vs-object which compares
  // via the object's string form (covers `header == "value"` patterns).
  if (is_string() && other.is_object()) return as_string() == other.to_string();
  if (is_object() && other.is_string()) return to_string() == other.as_string();
  return to_number() == other.to_number();
}

// ----- object ---------------------------------------------------------------

namespace {
// Process-wide: ids must stay unique across every context so a per-context
// inline cache can never be fooled by an address (or counter) being reused by
// a different object. Object construction is the hottest allocation path and
// worker threads each allocate constantly, so threads draw ids from a
// thread-local block and touch the shared atomic only once per block — no
// cross-core cache-line bouncing per object. Relaxed is enough: uniqueness,
// not ordering. Shape tables draw from the same allocator so shape keys and
// object-id keys occupy one namespace (an inline-cache way can hold either).
constexpr std::uint64_t id_block_size = 1 << 20;
std::atomic<std::uint64_t> next_id_block{1};

// Below this many own properties a linear scan beats the per-shape hash map.
constexpr std::size_t shape_index_min_props = 8;
}  // namespace

std::uint64_t next_object_id() {
  thread_local std::uint64_t cursor = 0;
  thread_local std::uint64_t block_end = 0;
  if (cursor == block_end) {
    cursor = next_id_block.fetch_add(id_block_size, std::memory_order_relaxed);
    block_end = cursor + id_block_size;
  }
  return cursor++;
}

object::object(object_kind k) : kind(k), id(next_object_id()) {}

object::~object() {
  if (shapes != nullptr && shape_id != 0) shapes->release(shape_id);
}

void object::attach_shape(std::shared_ptr<shape_table> table) {
  if (table == nullptr || !props.empty()) return;
  shapes = std::move(table);
  shape_id = shapes->root();
  shapes->retain(shape_id);
}

void object::demote_to_dictionary() {
  if (shape_id == 0) return;
  ++shape_gen;  // invalidate identity-keyed caches filled while shaped
  shapes->release(shape_id);
  shapes->note_dict_fallback();
  shape_id = 0;
}

value* object::find_own(std::string_view key) {
  if (shape_id != 0 && props.size() >= shape_index_min_props) {
    const int idx = shapes->index_of(shape_id, key, props);
    if (idx >= 0) return &props[static_cast<std::size_t>(idx)].val;
    if (idx == -1) return nullptr;
  }
  for (auto& p : props) {
    if (p.key == key) return &p.val;
  }
  return nullptr;
}

const value* object::find_own(std::string_view key) const {
  if (shape_id != 0 && props.size() >= shape_index_min_props) {
    const int idx = shapes->index_of(shape_id, key, props);
    if (idx >= 0) return &props[static_cast<std::size_t>(idx)].val;
    if (idx == -1) return nullptr;
  }
  for (const auto& p : props) {
    if (p.key == key) return &p.val;
  }
  return nullptr;
}

int object::own_index(std::string_view key) const {
  if (shape_id != 0 && props.size() >= shape_index_min_props) {
    const int idx = shapes->index_of(shape_id, key, props);
    if (idx != -2) return idx;
  }
  for (std::size_t i = 0; i < props.size(); ++i) {
    if (props[i].key == key) return static_cast<int>(i);
  }
  return -1;
}

value object::get(std::string_view key) const {
  for (const object* o = this; o != nullptr; o = o->proto.get()) {
    if (const value* v = o->find_own(key)) return *v;
  }
  return value::undefined();
}

bool object::has(std::string_view key) const {
  for (const object* o = this; o != nullptr; o = o->proto.get()) {
    if (o->find_own(key) != nullptr) return true;
  }
  return false;
}

void object::set(std::string_view key, value v) {
  if (value* existing = find_own(key)) {
    *existing = std::move(v);
    return;
  }
  ++shape_gen;  // new own property: indices of everything after it are fresh
  if (shape_id != 0) {
    // Append transition: existing indices are untouched, so shape-keyed
    // caches filled for the old shape stay valid for this object (they key
    // an ancestor of its new shape).
    const std::uint64_t next = shapes->transition(shape_id, key);
    shapes->release(shape_id);
    if (next != 0) {
      shapes->retain(next);
      shape_id = next;
    } else {
      shape_id = 0;  // table full: dictionary mode from here on
    }
  }
  props.push_back({std::string(key), std::move(v)});
}

bool object::erase(std::string_view key) {
  for (auto it = props.begin(); it != props.end(); ++it) {
    if (it->key == key) {
      ++shape_gen;  // erasure shifts later property indices
      demote_to_dictionary();
      props.erase(it);
      return true;
    }
  }
  return false;
}

object_ptr make_plain_object() { return std::make_shared<object>(object_kind::plain); }

object_ptr make_array_object() { return std::make_shared<object>(object_kind::array); }

object_ptr make_native_function(std::string name, native_fn fn) {
  auto o = std::make_shared<object>(object_kind::native_function);
  o->name = std::move(name);
  o->native = std::move(fn);
  return o;
}

object_ptr make_byte_array_object() {
  return std::make_shared<object>(object_kind::byte_array);
}

}  // namespace nakika::js
