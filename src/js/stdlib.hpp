// Standard library installed into every fresh context: primitive prototypes
// (String/Array/Number methods), Math, JSON, Object.keys, parseInt and
// friends, the ByteArray type the paper adds to SpiderMonkey, and a RegExp
// vocabulary backed by util::pattern.
#pragma once

#include <span>
#include <string>

#include "js/value.hpp"

namespace nakika::js {

class context;
class interpreter;

void install_stdlib(context& ctx);

// ----- helpers shared by stdlib and the Na Kika vocabularies -----------------

// args[i] or undefined.
[[nodiscard]] value arg_or_undefined(std::span<value> args, std::size_t i);
// Throws a script-catchable error with the given message.
[[noreturn]] void throw_js(const std::string& message);
// Requires a string argument; throws (catchable) otherwise.
[[nodiscard]] std::string require_string(std::span<value> args, std::size_t i,
                                         const char* who);
[[nodiscard]] double require_number(std::span<value> args, std::size_t i, const char* who);

// JSON (subset) conversion used both by the JSON global and the hard-state
// vocabulary.
[[nodiscard]] std::string json_stringify(const value& v);
[[nodiscard]] value json_parse(context& ctx, std::string_view text);

}  // namespace nakika::js
