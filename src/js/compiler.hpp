// Lowers the AST into bytecode chunks (bytecode.hpp). Identifier references
// are resolved at compile time: locals become slot indices, variables captured
// by nested functions become boxed cells, and everything else becomes a named
// global-object access — replacing the tree-walker's per-access hash walks
// through environment chains.
#pragma once

#include "js/ast.hpp"
#include "js/bytecode.hpp"

namespace nakika::js {

struct compile_options {
  // Superinstruction fusion: rewrite the hottest adjacent opcode pairs
  // (measured by `bench_interpreter --profile-pairs`) into fused opcodes.
  // The second instruction of each pair stays in the stream so jump targets
  // remain valid — the fused handler executes both halves and skips it.
  // Disabled for profiling runs so the histogram sees the raw pair stream.
  bool fuse = true;
};

// Compiles a parsed program. Throws script_error on internal lowering errors
// (malformed ASTs cannot come out of the parser, so this is effectively
// infallible for parser-produced input).
[[nodiscard]] compiled_program_ptr compile_program(const program_ptr& prog);
[[nodiscard]] compiled_program_ptr compile_program(const program_ptr& prog,
                                                   const compile_options& opts);

}  // namespace nakika::js
