// Operator semantics shared by the tree-walking interpreter and the bytecode
// VM. Both engines must agree bit-for-bit on every operator (the differential
// test depends on it), so the value-level logic lives here exactly once and
// the engines only differ in how they dispatch to it.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "js/errors.hpp"
#include "js/interpreter.hpp"
#include "js/value.hpp"

namespace nakika::js {

// Decimal string for an array index. For-in enumeration stringifies every
// element index; formatting ("0", "1", ...) with std::to_string per element
// was the hot spot, so small indices come from a precomputed table shared by
// both engines (the strings are short enough for SSO, so the copy the caller
// takes never allocates). Thread-safe: magic-static initialization, then
// read-only.
[[nodiscard]] inline const std::string& small_index_string(std::size_t i) {
  constexpr std::size_t table_size = 1024;
  static const std::array<std::string, table_size> table = [] {
    std::array<std::string, table_size> t;
    for (std::size_t n = 0; n < table_size; ++n) t[n] = std::to_string(n);
    return t;
  }();
  if (i < table_size) return table[i];
  thread_local std::string big;
  big = std::to_string(i);
  return big;
}

enum class binop : std::uint8_t {
  add, sub, mul, div, mod,
  eq, ne, seq, sne,
  lt, gt, le, ge,
  band, bor, bxor, shl, shr,
  in_op, instanceof_op,
};

[[nodiscard]] inline std::optional<binop> binop_from_string(std::string_view op) {
  if (op == "+") return binop::add;
  if (op == "-") return binop::sub;
  if (op == "*") return binop::mul;
  if (op == "/") return binop::div;
  if (op == "%") return binop::mod;
  if (op == "==") return binop::eq;
  if (op == "!=") return binop::ne;
  if (op == "===") return binop::seq;
  if (op == "!==") return binop::sne;
  if (op == "<") return binop::lt;
  if (op == ">") return binop::gt;
  if (op == "<=") return binop::le;
  if (op == ">=") return binop::ge;
  if (op == "&") return binop::band;
  if (op == "|") return binop::bor;
  if (op == "^") return binop::bxor;
  if (op == "<<") return binop::shl;
  if (op == ">>") return binop::shr;
  if (op == "in") return binop::in_op;
  if (op == "instanceof") return binop::instanceof_op;
  return std::nullopt;
}

[[nodiscard]] inline double op_to_int32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0.0;
  return static_cast<double>(static_cast<std::int32_t>(static_cast<std::int64_t>(d)));
}

// Full binary-operator semantics (the `a + b` flavor: objects coerce to
// strings unless paired with a number).
[[nodiscard]] inline value apply_binop(context& ctx, binop op, const value& left,
                                       const value& right, int line) {
  switch (op) {
    case binop::add:
      if (left.is_string() || right.is_string() ||
          (left.is_object() && !right.is_number()) ||
          (right.is_object() && !left.is_number())) {
        std::string result = left.to_string() + right.to_string();
        ctx.charge_transient(result.size());
        return value::string(std::move(result));
      }
      return value::number(left.to_number() + right.to_number());
    case binop::sub: return value::number(left.to_number() - right.to_number());
    case binop::mul: return value::number(left.to_number() * right.to_number());
    case binop::div: return value::number(left.to_number() / right.to_number());
    case binop::mod: return value::number(std::fmod(left.to_number(), right.to_number()));

    case binop::eq: return value::boolean(left.loose_equals(right));
    case binop::ne: return value::boolean(!left.loose_equals(right));
    case binop::seq: return value::boolean(left.strict_equals(right));
    case binop::sne: return value::boolean(!left.strict_equals(right));

    case binop::lt:
    case binop::gt:
    case binop::le:
    case binop::ge: {
      if (left.is_string() && right.is_string()) {
        const int cmp = left.as_string().compare(right.as_string());
        if (op == binop::lt) return value::boolean(cmp < 0);
        if (op == binop::gt) return value::boolean(cmp > 0);
        if (op == binop::le) return value::boolean(cmp <= 0);
        return value::boolean(cmp >= 0);
      }
      const double l = left.to_number();
      const double r = right.to_number();
      if (op == binop::lt) return value::boolean(l < r);
      if (op == binop::gt) return value::boolean(l > r);
      if (op == binop::le) return value::boolean(l <= r);
      return value::boolean(l >= r);
    }

    case binop::band:
    case binop::bor:
    case binop::bxor:
    case binop::shl:
    case binop::shr: {
      const auto l = static_cast<std::int32_t>(op_to_int32(left.to_number()));
      const auto r = static_cast<std::int32_t>(op_to_int32(right.to_number()));
      if (op == binop::band) return value::number(l & r);
      if (op == binop::bor) return value::number(l | r);
      if (op == binop::bxor) return value::number(l ^ r);
      if (op == binop::shl) return value::number(l << (r & 31));
      return value::number(l >> (r & 31));
    }

    case binop::in_op: {
      if (!right.is_object()) {
        throw script_error(script_error_kind::runtime, "'in' requires an object", line);
      }
      const auto& obj = right.as_object();
      if (obj->kind == object_kind::array && left.is_number()) {
        const auto i = static_cast<std::int64_t>(left.as_number());
        return value::boolean(i >= 0 && static_cast<std::size_t>(i) < obj->elements.size());
      }
      return value::boolean(obj->has(left.to_string()));
    }

    case binop::instanceof_op: {
      if (!right.is_object() || !right.as_object()->callable()) {
        throw script_error(script_error_kind::runtime, "'instanceof' requires a function",
                           line);
      }
      if (!left.is_object()) return value::boolean(false);
      const value proto = right.as_object()->get("prototype");
      if (!proto.is_object()) return value::boolean(false);
      for (object_ptr p = left.as_object()->proto; p != nullptr; p = p->proto) {
        if (p == proto.as_object()) return value::boolean(true);
      }
      return value::boolean(false);
    }
  }
  throw script_error(script_error_kind::runtime, "unknown binary operator", line);
}

// Compound-assignment flavor (`a += b`): the `+` case concatenates only when a
// string is involved — objects on the left do NOT force concatenation, which
// is a (faithfully preserved) quirk of the original tree-walker.
[[nodiscard]] inline value apply_compound_binop(context& ctx, binop op, const value& current,
                                                const value& operand, int line) {
  if (op == binop::add) {
    if (current.is_string() || operand.is_string()) {
      std::string result = current.to_string() + operand.to_string();
      ctx.charge_transient(result.size());
      return value::string(std::move(result));
    }
    return value::number(current.to_number() + operand.to_number());
  }
  return apply_binop(ctx, op, current, operand, line);
}

}  // namespace nakika::js
