// Shape (hidden-class) registry. Objects that acquire the same property names
// in the same order share an interned shape id drawn from a transition tree:
// the root shape is the empty object, and each child shape is
// (parent shape, appended name). Because properties are only ever appended
// while an object stays shaped (deletes demote it to dictionary mode), a
// shape id fully determines the property layout PREFIX — an inline cache
// keyed on (shape_id -> prop index) stays valid for every object of that
// shape, and for every append-descendant of it.
//
// One table per context (the sandbox isolation unit). Shape ids are drawn
// from the same process-unique id space as object ids, so a cache key can
// never alias an id minted by a different context's table (compiled chunks —
// and hence IC slot indices — are shared across sandboxes and threads; the
// mutable tables are not).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "js/value.hpp"

namespace nakika::js {

class shape_table {
 public:
  // `max_shapes` bounds the interned-shape count; transitions past the bound
  // return 0 and the object falls back to dictionary mode (identity-keyed
  // caching, the pre-shape behavior).
  explicit shape_table(std::size_t max_shapes);

  // The empty-object shape every freshly created (shaped) object starts at.
  [[nodiscard]] std::uint64_t root() const { return root_; }

  // Child shape for appending `key` to `parent`; interned on first use.
  // Returns 0 when the table is full (caller demotes to dictionary mode).
  [[nodiscard]] std::uint64_t transition(std::uint64_t parent, std::string_view key);

  // Parent shape, or 0 for the root / a shape this table no longer knows
  // (compacted away) — callers treat 0 as "stop walking".
  [[nodiscard]] std::uint64_t parent_of(std::uint64_t id) const;

  // Own-property index of `key` under shape `id`, answered from a per-shape
  // name->index map built lazily from `props` (an exemplar object of that
  // shape). Returns the index, -1 if the shape has no such property, or -2
  // when the shape isn't indexed yet (caller falls back to a linear scan;
  // the map is only built for shapes that keep getting asked).
  [[nodiscard]] int index_of(std::uint64_t id, std::string_view key,
                             const std::vector<object::property>& props);

  // Live-object refcounts drive compaction: a shape nothing points at can be
  // dropped (and re-derived from the root if the same literal runs again).
  void retain(std::uint64_t id);
  void release(std::uint64_t id);

  // Records a demotion to dictionary mode (table overflow, property delete,
  // or GC sweep of a shaped object).
  void note_dict_fallback() { ++dict_fallbacks_; }

  // True when no live object carries `id` (or the table no longer knows it).
  // The GC uses this after a sweep: a cache way keyed to a shape whose last
  // object just died can never pay for itself before compaction drops the
  // shape, so the sweep clears it eagerly.
  [[nodiscard]] bool shape_is_dead(std::uint64_t id) const;

  // For-in enumeration cache: a shape fully determines its objects' key
  // sequence, so the engine-internal key array the VM snapshots at for-in
  // entry can be built once per shape and shared. The array is never
  // script-visible (only forin_next reads it), untracked, and uncharged —
  // identical billing to rebuilding it every loop. Dropped with the shape
  // on compact().
  [[nodiscard]] const object_ptr& enum_keys(std::uint64_t id) const;
  void set_enum_keys(std::uint64_t id, object_ptr keys);

  // Drops shapes with no live objects. Only acts under table pressure
  // (> half the bound): steady-state workloads keep their interned ids
  // forever, while shape-churning scripts stay O(live shapes).
  void compact();

  // --- observability (monotonic; callers snapshot for per-run deltas) ------
  [[nodiscard]] std::size_t live_shapes() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] std::uint64_t dict_fallbacks() const { return dict_fallbacks_; }

 private:
  // Heterogeneous lookup so index_of can probe with the caller's
  // string_view key — the map is hit on every indexed property access and a
  // per-lookup std::string materialization would dominate the probe itself.
  struct sv_hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct node {
    std::uint64_t parent = 0;
    std::uint32_t nprops = 0;
    std::uint32_t live = 0;     // objects currently carrying this shape
    std::uint32_t lookups = 0;  // index_of calls before the map is built
    // Transition edges out of this shape. Linear: a shape rarely has more
    // than a handful of distinct successor names.
    std::vector<std::pair<std::string, std::uint64_t>> kids;
    std::unordered_map<std::string, std::uint32_t, sv_hash, std::equal_to<>> index;
    object_ptr enum_cache;  // shared for-in key array (see enum_keys)
    bool indexed = false;
  };

  std::size_t max_shapes_;
  std::uint64_t root_;
  std::unordered_map<std::uint64_t, node> nodes_;
  // One-entry id->node memo for index_of: property-heavy loops probe the same
  // (large) object thousands of times in a row, and this turns the two chained
  // hash lookups per probe into one. Node pointers are stable in the
  // node-based map; only compact() erases nodes, and it resets the memo.
  std::uint64_t memo_id_ = 0;
  node* memo_node_ = nullptr;
  std::uint64_t transitions_ = 0;
  std::uint64_t dict_fallbacks_ = 0;
};

}  // namespace nakika::js
