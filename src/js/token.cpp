#include "js/token.hpp"

#include <array>

namespace nakika::js {

bool is_reserved_word(std::string_view word) {
  static constexpr std::array keywords = {
      "var",      "function", "return",  "if",     "else",    "while",
      "for",      "do",       "break",   "continue", "new",   "delete",
      "typeof",   "in",       "null",    "true",   "false",   "undefined",
      "this",     "throw",    "try",     "catch",  "finally", "switch",
      "case",     "default",  "instanceof",
  };
  for (const char* kw : keywords) {
    if (word == kw) return true;
  }
  return false;
}

}  // namespace nakika::js
