// Cycle collector for the script heap. The object graph is shared_ptr-
// managed, so acyclic garbage dies by reference counting the moment the last
// owner drops it; what leaks are reference cycles — object↔object property
// loops, escaped closures whose environment slots point back at them, and
// VM capture cells holding the function that captured them. Those used to
// survive until context teardown (ROADMAP open item 4), which is fatal for
// pooled sandboxes that live for millions of requests.
//
// The collector is a trial-deletion ("Python gc") mark-sweep over the set of
// *tracked* heap nodes: every script-visible object (context::make_*), every
// environment that became a function's closure, and every capture cell. For
// each candidate it computes
//
//     external_refs = use_count() - 1 (the collector's own pin)
//                   - (candidate→candidate edges found by traversal)
//
// Candidates with external_refs > 0 are referenced from outside the tracked
// graph — context globals, live frame-arena slots, host bindings, policy
// registries, C++ locals — and become mark roots; marks propagate through
// candidate edges; whatever stays unmarked is cyclic garbage. Its outgoing
// edges are severed (properties, elements, prototype, closure, captures,
// cell payloads) and plain reference counting cascades the actual frees.
// Roots therefore never need enumerating and mutators need no write barrier:
// any reference the traversal cannot see merely *overcounts* external refs,
// which keeps an object alive — always safe. The count+mark+sweep runs as
// one atomic step on the context's own thread (contexts are single-threaded
// by design), so edges cannot move between counting and marking.
//
// Incrementality: the registry scan that precedes a cycle (dropping weak_ptr
// entries whose node already died by refcounting) runs in bounded slices at
// the interpreter/VM fuel-check safepoints, after the kill flag has been
// checked — a collection never delays a termination. The final
// count+mark+sweep is bounded by the *live* candidate set, not by total
// allocation volume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "js/value.hpp"

namespace nakika::js {

class context;
class environment;

// Result of one full collection cycle (for billing and telemetry).
struct gc_cycle_result {
  std::uint64_t objects_collected = 0;  // object nodes severed
  std::uint64_t envs_collected = 0;     // closure environments severed
  std::uint64_t cells_collected = 0;    // capture cells cleared
  std::uint64_t bytes_reclaimed = 0;    // live-heap delta across the cycle
  std::uint64_t ic_entries_cleared = 0; // inline-cache entries for swept ids
  double seconds = 0.0;                 // wall time of the atomic phase
};

// Per-run accumulation, reset by context::reset_for_reuse (i.e. per pipeline
// execution) so GC time can be billed to the tenant whose run triggered it.
struct gc_run_stats {
  std::uint64_t collections = 0;
  std::uint64_t objects_collected = 0;
  std::uint64_t bytes_reclaimed = 0;
  std::uint64_t ic_entries_cleared = 0;
  double seconds = 0.0;
  // Individual pause durations (slices + atomic phases), bounded; feeds the
  // node's gc_pause latency histogram.
  std::vector<double> pauses;
};

class gc_heap {
 public:
  explicit gc_heap(context& ctx) : ctx_(ctx) {}
  gc_heap(const gc_heap&) = delete;
  gc_heap& operator=(const gc_heap&) = delete;

  // --- tracking (called from context::make_* at allocation time) ---------
  void track(const object_ptr& o) { objects_.push_back(o); }
  // Marks every environment on `closure`'s parent chain as a candidate (the
  // chain stops at the global scope and at already-tracked environments).
  void track_env_chain(const env_ptr& closure);
  void track_cell(const std::shared_ptr<value>& cell) { cells_.push_back(cell); }
  // Bumps the allocation counter and arms the collector once the watermark
  // (context_limits::gc_watermark; 0 disables) is crossed.
  void note_allocation();

  // --- safepoints ---------------------------------------------------------
  [[nodiscard]] bool pending() const { return pending_; }
  // One bounded increment: a registry-compaction slice while the scan is in
  // progress, the atomic count+mark+sweep once it completes. Call only after
  // the kill flag has been checked.
  void safepoint();
  // Runs a whole cycle now (pool return, teardown prep, tests).
  gc_cycle_result collect();
  // Anything allocated since the last completed cycle?
  [[nodiscard]] bool dirty() const { return pending_ || allocs_since_cycle_ != 0; }

  // Severs every edge of every tracked node unconditionally. Called from
  // ~context so cycles that survive the last cycle (or were never collected
  // because the watermark is off) free when the context's owners drop.
  void sever_all();

  // --- accounting ----------------------------------------------------------
  [[nodiscard]] const gc_run_stats& run_stats() const { return run_; }
  void begin_run() {
    run_ = gc_run_stats{};
  }
  [[nodiscard]] std::uint64_t collections_total() const { return collections_total_; }
  // Tracked-registry footprint (objects + envs + cells entries, live or not);
  // tests assert it stays O(live) across create/drop churn.
  [[nodiscard]] std::size_t registry_size() const {
    return objects_.size() + envs_.size() + cells_.size();
  }

 private:
  [[nodiscard]] std::size_t watermark() const;
  [[nodiscard]] std::size_t slice_budget() const;
  gc_cycle_result collect_cycle();
  void note_pause(double seconds);

  context& ctx_;
  std::vector<std::weak_ptr<object>> objects_;
  std::vector<std::weak_ptr<environment>> envs_;
  // Capture cells; one closure's cell may be captured again by later
  // closures, so entries can repeat — deduplicated at collection time (an
  // address set at track time would be unsound under allocator reuse).
  std::vector<std::weak_ptr<value>> cells_;

  std::size_t allocs_since_cycle_ = 0;
  bool pending_ = false;
  // Incremental registry-compaction scan state (valid while compacting_).
  bool compacting_ = false;
  std::size_t scan_ = 0;
  std::size_t keep_ = 0;

  gc_run_stats run_;
  std::uint64_t collections_total_ = 0;
};

}  // namespace nakika::js
