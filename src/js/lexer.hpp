// Hand-written lexer for the scripting language. Produces the full token
// stream up front; scripts are small (the paper's largest is ~100 lines), so
// eager tokenization keeps the parser simple.
#pragma once

#include <string_view>
#include <vector>

#include "js/token.hpp"

namespace nakika::js {

// Tokenizes `source`. Throws script_error(syntax) on malformed input
// (unterminated strings/comments, bad numbers, stray characters).
[[nodiscard]] std::vector<token> tokenize(std::string_view source);

}  // namespace nakika::js
