// Error taxonomy for the scripting engine. Everything the sandbox and the
// resource manager care about is distinguishable: syntax errors, runtime type
// errors, script-thrown values, resource exhaustion, and forced termination
// (the congestion controller killing a pipeline, paper Fig. 6).
#pragma once

#include <stdexcept>
#include <string>

namespace nakika::js {

enum class script_error_kind {
  syntax,          // lexer/parser rejection
  runtime,         // type errors, undefined calls, bad arguments
  thrown,          // uncaught `throw` from script code
  out_of_memory,   // context heap budget exhausted
  ops_budget,      // instruction budget exhausted
  terminated,      // kill flag set by the resource manager
};

class script_error : public std::runtime_error {
 public:
  script_error(script_error_kind kind, std::string message, int line = 0)
      : std::runtime_error(std::move(message)), kind_(kind), line_(line) {}

  [[nodiscard]] script_error_kind kind() const { return kind_; }
  [[nodiscard]] int line() const { return line_; }

 private:
  script_error_kind kind_;
  int line_;
};

[[nodiscard]] inline const char* to_string(script_error_kind kind) {
  switch (kind) {
    case script_error_kind::syntax: return "syntax";
    case script_error_kind::runtime: return "runtime";
    case script_error_kind::thrown: return "thrown";
    case script_error_kind::out_of_memory: return "out_of_memory";
    case script_error_kind::ops_budget: return "ops_budget";
    case script_error_kind::terminated: return "terminated";
  }
  return "?";
}

}  // namespace nakika::js
