// Stack-based virtual machine for compiled chunks (bytecode.hpp). One
// dispatch loop charges fuel per opcode and checks the resource manager's
// kill flag at loop back-edges and call boundaries — replacing the
// tree-walker's per-AST-node accounting. Script semantics (property access,
// operators, heap charging) are shared with the tree-walker through
// js/ops.hpp and the interpreter's property helpers, so both engines stay
// behaviorally identical.
#pragma once

#include <vector>

#include "js/bytecode.hpp"
#include "js/interpreter.hpp"

namespace nakika::js {

// Executes a compiled top-level chunk in `ctx`'s global scope. Uncaught
// script exceptions surface as script_error(thrown), mirroring
// interpreter::run.
void run_program(context& ctx, const compiled_program_ptr& prog);

// Calls a VM-compiled function object. Script exceptions propagate as
// thrown_value so an enclosing try (in either engine) can catch them; the
// interpreter's cross-engine dispatch relies on this.
[[nodiscard]] value call_compiled(context& ctx, const object_ptr& fn, const value& this_value,
                                  std::vector<value> args, int line);

// Parse + compile + run in one step (bytecode twin of the tree-walking
// eval_script path; used by the engine-selectable eval_script helper).
void eval_script_bytecode(context& ctx, std::string_view source,
                          std::string_view name = "<script>");

}  // namespace nakika::js
