// Recursive-descent parser producing the AST in ast.hpp.
#pragma once

#include <string_view>

#include "js/ast.hpp"

namespace nakika::js {

// Parses a complete script. Throws script_error(syntax) on malformed input.
// `name` is used in diagnostics (conventionally the script's URL).
[[nodiscard]] program_ptr parse_program(std::string_view source, std::string_view name = "<script>");

}  // namespace nakika::js
