#include "js/compiler.hpp"

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "js/errors.hpp"
#include "js/ops.hpp"

namespace nakika::js {

namespace {

// ----- capture pre-scan --------------------------------------------------------
//
// A local must be boxed (allocated as a cell) when any nested function might
// reference it. We over-approximate by name: before compiling a function, we
// collect every identifier mentioned inside nested function literals; locals
// with those names are boxed. Boxing is semantically identical to a plain
// slot, so over-approximation only costs an indirection, never correctness.

void collect_names_stmt(const stmt& s, std::set<std::string>& out);

void collect_names_expr(const expr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case expr_kind::identifier:
      out.insert(static_cast<const identifier&>(e).name);
      return;
    case expr_kind::array_lit:
      for (const auto& el : static_cast<const array_lit&>(e).elements) {
        collect_names_expr(*el, out);
      }
      return;
    case expr_kind::object_lit:
      for (const auto& [key, val] : static_cast<const object_lit&>(e).entries) {
        collect_names_expr(*val, out);
      }
      return;
    case expr_kind::function_lit:
      for (const auto& st : static_cast<const function_lit&>(e).body) {
        collect_names_stmt(*st, out);
      }
      return;
    case expr_kind::member:
      collect_names_expr(*static_cast<const member_expr&>(e).object, out);
      return;
    case expr_kind::index: {
      const auto& ix = static_cast<const index_expr&>(e);
      collect_names_expr(*ix.object, out);
      collect_names_expr(*ix.index, out);
      return;
    }
    case expr_kind::call: {
      const auto& c = static_cast<const call_expr&>(e);
      collect_names_expr(*c.callee, out);
      for (const auto& a : c.args) collect_names_expr(*a, out);
      return;
    }
    case expr_kind::new_call: {
      const auto& n = static_cast<const new_expr&>(e);
      collect_names_expr(*n.callee, out);
      for (const auto& a : n.args) collect_names_expr(*a, out);
      return;
    }
    case expr_kind::unary:
      collect_names_expr(*static_cast<const unary_expr&>(e).operand, out);
      return;
    case expr_kind::binary: {
      const auto& b = static_cast<const binary_expr&>(e);
      collect_names_expr(*b.left, out);
      collect_names_expr(*b.right, out);
      return;
    }
    case expr_kind::logical: {
      const auto& l = static_cast<const logical_expr&>(e);
      collect_names_expr(*l.left, out);
      collect_names_expr(*l.right, out);
      return;
    }
    case expr_kind::conditional: {
      const auto& c = static_cast<const conditional_expr&>(e);
      collect_names_expr(*c.condition, out);
      collect_names_expr(*c.if_true, out);
      collect_names_expr(*c.if_false, out);
      return;
    }
    case expr_kind::assign: {
      const auto& a = static_cast<const assign_expr&>(e);
      collect_names_expr(*a.target, out);
      collect_names_expr(*a.value, out);
      return;
    }
    case expr_kind::update:
      collect_names_expr(*static_cast<const update_expr&>(e).target, out);
      return;
    default:
      return;  // literals, this
  }
}

void collect_names_stmt(const stmt& s, std::set<std::string>& out) {
  switch (s.kind) {
    case stmt_kind::expr_stmt:
      collect_names_expr(*static_cast<const expr_stmt&>(s).expression, out);
      return;
    case stmt_kind::var_decl:
      for (const auto& [name, init] : static_cast<const var_decl&>(s).declarations) {
        out.insert(name);
        if (init) collect_names_expr(*init, out);
      }
      return;
    case stmt_kind::block:
      for (const auto& st : static_cast<const block_stmt&>(s).body) {
        collect_names_stmt(*st, out);
      }
      return;
    case stmt_kind::if_stmt: {
      const auto& n = static_cast<const if_stmt&>(s);
      collect_names_expr(*n.condition, out);
      collect_names_stmt(*n.then_branch, out);
      if (n.else_branch) collect_names_stmt(*n.else_branch, out);
      return;
    }
    case stmt_kind::while_stmt: {
      const auto& n = static_cast<const while_stmt&>(s);
      collect_names_expr(*n.condition, out);
      collect_names_stmt(*n.body, out);
      return;
    }
    case stmt_kind::do_while_stmt: {
      const auto& n = static_cast<const do_while_stmt&>(s);
      collect_names_stmt(*n.body, out);
      collect_names_expr(*n.condition, out);
      return;
    }
    case stmt_kind::for_stmt: {
      const auto& n = static_cast<const for_stmt&>(s);
      if (n.init) collect_names_stmt(*n.init, out);
      if (n.condition) collect_names_expr(*n.condition, out);
      if (n.step) collect_names_expr(*n.step, out);
      collect_names_stmt(*n.body, out);
      return;
    }
    case stmt_kind::for_in_stmt: {
      const auto& n = static_cast<const for_in_stmt&>(s);
      out.insert(n.variable);
      collect_names_expr(*n.object, out);
      collect_names_stmt(*n.body, out);
      return;
    }
    case stmt_kind::return_stmt: {
      const auto& n = static_cast<const return_stmt&>(s);
      if (n.value) collect_names_expr(*n.value, out);
      return;
    }
    case stmt_kind::function_decl: {
      const auto& n = static_cast<const function_decl&>(s);
      out.insert(n.function->name);
      for (const auto& st : n.function->body) collect_names_stmt(*st, out);
      return;
    }
    case stmt_kind::throw_stmt:
      collect_names_expr(*static_cast<const throw_stmt&>(s).value, out);
      return;
    case stmt_kind::try_stmt: {
      const auto& n = static_cast<const try_stmt&>(s);
      collect_names_stmt(*n.try_block, out);
      if (!n.catch_name.empty()) out.insert(n.catch_name);
      if (n.catch_block) collect_names_stmt(*n.catch_block, out);
      if (n.finally_block) collect_names_stmt(*n.finally_block, out);
      return;
    }
    case stmt_kind::switch_stmt: {
      const auto& n = static_cast<const switch_stmt&>(s);
      collect_names_expr(*n.discriminant, out);
      for (const auto& c : n.cases) {
        if (c.test) collect_names_expr(*c.test, out);
        for (const auto& st : c.body) collect_names_stmt(*st, out);
      }
      return;
    }
    default:
      return;  // break, continue, empty
  }
}

// Names referenced anywhere inside nested function literals of `body`.
void collect_inner_refs_stmt(const stmt& s, std::set<std::string>& out);

void collect_inner_refs_expr(const expr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case expr_kind::function_lit:
      // Everything mentioned inside a nested function (at any depth) might be
      // a capture of the current function's locals.
      for (const auto& st : static_cast<const function_lit&>(e).body) {
        collect_names_stmt(*st, out);
      }
      return;
    case expr_kind::array_lit:
      for (const auto& el : static_cast<const array_lit&>(e).elements) {
        collect_inner_refs_expr(*el, out);
      }
      return;
    case expr_kind::object_lit:
      for (const auto& [key, val] : static_cast<const object_lit&>(e).entries) {
        collect_inner_refs_expr(*val, out);
      }
      return;
    case expr_kind::member:
      collect_inner_refs_expr(*static_cast<const member_expr&>(e).object, out);
      return;
    case expr_kind::index: {
      const auto& ix = static_cast<const index_expr&>(e);
      collect_inner_refs_expr(*ix.object, out);
      collect_inner_refs_expr(*ix.index, out);
      return;
    }
    case expr_kind::call: {
      const auto& c = static_cast<const call_expr&>(e);
      collect_inner_refs_expr(*c.callee, out);
      for (const auto& a : c.args) collect_inner_refs_expr(*a, out);
      return;
    }
    case expr_kind::new_call: {
      const auto& n = static_cast<const new_expr&>(e);
      collect_inner_refs_expr(*n.callee, out);
      for (const auto& a : n.args) collect_inner_refs_expr(*a, out);
      return;
    }
    case expr_kind::unary:
      collect_inner_refs_expr(*static_cast<const unary_expr&>(e).operand, out);
      return;
    case expr_kind::binary: {
      const auto& b = static_cast<const binary_expr&>(e);
      collect_inner_refs_expr(*b.left, out);
      collect_inner_refs_expr(*b.right, out);
      return;
    }
    case expr_kind::logical: {
      const auto& l = static_cast<const logical_expr&>(e);
      collect_inner_refs_expr(*l.left, out);
      collect_inner_refs_expr(*l.right, out);
      return;
    }
    case expr_kind::conditional: {
      const auto& c = static_cast<const conditional_expr&>(e);
      collect_inner_refs_expr(*c.condition, out);
      collect_inner_refs_expr(*c.if_true, out);
      collect_inner_refs_expr(*c.if_false, out);
      return;
    }
    case expr_kind::assign: {
      const auto& a = static_cast<const assign_expr&>(e);
      collect_inner_refs_expr(*a.target, out);
      collect_inner_refs_expr(*a.value, out);
      return;
    }
    case expr_kind::update:
      collect_inner_refs_expr(*static_cast<const update_expr&>(e).target, out);
      return;
    default:
      return;
  }
}

void collect_inner_refs_stmt(const stmt& s, std::set<std::string>& out) {
  switch (s.kind) {
    case stmt_kind::expr_stmt:
      collect_inner_refs_expr(*static_cast<const expr_stmt&>(s).expression, out);
      return;
    case stmt_kind::var_decl:
      for (const auto& [name, init] : static_cast<const var_decl&>(s).declarations) {
        if (init) collect_inner_refs_expr(*init, out);
      }
      return;
    case stmt_kind::block:
      for (const auto& st : static_cast<const block_stmt&>(s).body) {
        collect_inner_refs_stmt(*st, out);
      }
      return;
    case stmt_kind::if_stmt: {
      const auto& n = static_cast<const if_stmt&>(s);
      collect_inner_refs_expr(*n.condition, out);
      collect_inner_refs_stmt(*n.then_branch, out);
      if (n.else_branch) collect_inner_refs_stmt(*n.else_branch, out);
      return;
    }
    case stmt_kind::while_stmt: {
      const auto& n = static_cast<const while_stmt&>(s);
      collect_inner_refs_expr(*n.condition, out);
      collect_inner_refs_stmt(*n.body, out);
      return;
    }
    case stmt_kind::do_while_stmt: {
      const auto& n = static_cast<const do_while_stmt&>(s);
      collect_inner_refs_stmt(*n.body, out);
      collect_inner_refs_expr(*n.condition, out);
      return;
    }
    case stmt_kind::for_stmt: {
      const auto& n = static_cast<const for_stmt&>(s);
      if (n.init) collect_inner_refs_stmt(*n.init, out);
      if (n.condition) collect_inner_refs_expr(*n.condition, out);
      if (n.step) collect_inner_refs_expr(*n.step, out);
      collect_inner_refs_stmt(*n.body, out);
      return;
    }
    case stmt_kind::for_in_stmt: {
      const auto& n = static_cast<const for_in_stmt&>(s);
      collect_inner_refs_expr(*n.object, out);
      collect_inner_refs_stmt(*n.body, out);
      return;
    }
    case stmt_kind::return_stmt: {
      const auto& n = static_cast<const return_stmt&>(s);
      if (n.value) collect_inner_refs_expr(*n.value, out);
      return;
    }
    case stmt_kind::function_decl:
      // A nested function declaration: everything inside it may capture.
      for (const auto& st : static_cast<const function_decl&>(s).function->body) {
        collect_names_stmt(*st, out);
      }
      return;
    case stmt_kind::throw_stmt:
      collect_inner_refs_expr(*static_cast<const throw_stmt&>(s).value, out);
      return;
    case stmt_kind::try_stmt: {
      const auto& n = static_cast<const try_stmt&>(s);
      collect_inner_refs_stmt(*n.try_block, out);
      if (n.catch_block) collect_inner_refs_stmt(*n.catch_block, out);
      if (n.finally_block) collect_inner_refs_stmt(*n.finally_block, out);
      return;
    }
    case stmt_kind::switch_stmt: {
      const auto& n = static_cast<const switch_stmt&>(s);
      collect_inner_refs_expr(*n.discriminant, out);
      for (const auto& c : n.cases) {
        if (c.test) collect_inner_refs_expr(*c.test, out);
        for (const auto& st : c.body) collect_inner_refs_stmt(*st, out);
      }
      return;
    }
    default:
      return;
  }
}

// A side-effect-free expression: evaluating it cannot modify any binding (no
// calls, no `new`, no assignments, no updates). Used to justify reading a
// fused slot operand after instead of before such an expression.
bool is_pure(const expr& e) {
  switch (e.kind) {
    case expr_kind::number_lit:
    case expr_kind::string_lit:
    case expr_kind::bool_lit:
    case expr_kind::null_lit:
    case expr_kind::undefined_lit:
    case expr_kind::identifier:
    case expr_kind::this_expr:
    case expr_kind::function_lit:  // creating a closure runs no user code
      return true;
    case expr_kind::member:
      return is_pure(*static_cast<const member_expr&>(e).object);
    case expr_kind::index: {
      const auto& ix = static_cast<const index_expr&>(e);
      return is_pure(*ix.object) && is_pure(*ix.index);
    }
    case expr_kind::unary:
      return is_pure(*static_cast<const unary_expr&>(e).operand);
    case expr_kind::binary: {
      const auto& b = static_cast<const binary_expr&>(e);
      return is_pure(*b.left) && is_pure(*b.right);
    }
    case expr_kind::logical: {
      const auto& l = static_cast<const logical_expr&>(e);
      return is_pure(*l.left) && is_pure(*l.right);
    }
    case expr_kind::conditional: {
      const auto& c = static_cast<const conditional_expr&>(e);
      return is_pure(*c.condition) && is_pure(*c.if_true) && is_pure(*c.if_false);
    }
    case expr_kind::array_lit: {
      const auto& a = static_cast<const array_lit&>(e);
      for (const auto& el : a.elements) {
        if (!is_pure(*el)) return false;
      }
      return true;
    }
    case expr_kind::object_lit: {
      const auto& o = static_cast<const object_lit&>(e);
      for (const auto& [key, val] : o.entries) {
        if (!is_pure(*val)) return false;
      }
      return true;
    }
    default:
      return false;  // call, new_call, assign, update
  }
}

// ----- the compiler ------------------------------------------------------------

[[noreturn]] void compile_fail(const std::string& message, int line) {
  throw script_error(script_error_kind::runtime, "compiler: " + message, line);
}

class fn_compiler {
 public:
  struct reference {
    enum class kind { slot, cell, capture, global } k;
    std::uint32_t index = 0;  // unused for global
  };

  fn_compiler(compiled_fn* fn, fn_compiler* parent, bool global_backed_base)
      : fn_(fn), parent_(parent) {
    scopes_.push_back(scope{{}, 0, 0, global_backed_base});
  }

  compiled_fn* fn() { return fn_; }

  // --- emission ----------------------------------------------------------------
  std::size_t emit(opcode op, std::int32_t a, std::int32_t b, int line) {
    fn_->code.push_back(bc_instr{op, a, b, 0, line});
    return fn_->code.size() - 1;
  }
  std::size_t emit_c(opcode op, std::int32_t a, std::int32_t b, std::int32_t c, int line) {
    fn_->code.push_back(bc_instr{op, a, b, c, line});
    return fn_->code.size() - 1;
  }
  std::size_t here() const { return fn_->code.size(); }
  void patch(std::size_t instr_index, std::size_t target) {
    bc_instr& ins = fn_->code[instr_index];
    ins.a = static_cast<std::int32_t>(target);
    // A `jump` that lands at or before itself is a loop back-edge and must
    // flush fuel / check the kill flag.
    if (ins.op == opcode::jump && target <= instr_index) ins.op = opcode::loop_back;
  }

  std::int32_t const_string(const std::string& s) {
    auto [it, inserted] = string_consts_.try_emplace(s, fn_->consts.size());
    if (inserted) fn_->consts.push_back(value::string(s));
    return static_cast<std::int32_t>(it->second);
  }
  // A fresh inline-cache slot. Every global/property access site gets its own
  // slot (monomorphic per-site caches); the VM's per-context side table is
  // sized by the resulting num_ics.
  std::int32_t next_ic() { return static_cast<std::int32_t>(fn_->num_ics++); }
  std::int32_t const_number(double d) {
    auto [it, inserted] = number_consts_.try_emplace(d, fn_->consts.size());
    if (inserted) fn_->consts.push_back(value::number(d));
    return static_cast<std::int32_t>(it->second);
  }

  // --- scopes and locals -------------------------------------------------------
  void begin_scope(bool global_backed = false) {
    scopes_.push_back(scope{{}, next_slot_, next_cell_, global_backed});
  }
  void end_scope() {
    next_slot_ = scopes_.back().slot_mark;
    next_cell_ = scopes_.back().cell_mark;
    scopes_.pop_back();
  }

  [[nodiscard]] bool in_global_scope() const { return scopes_.back().global_backed; }
  [[nodiscard]] bool is_toplevel() const { return fn_->is_toplevel; }

  // Declares a named local in the current scope; emits make_cell for boxed
  // bindings. Redeclaration in the same scope reuses the existing binding
  // (matching environment::declare's overwrite semantics).
  bc_binding declare_local(const std::string& name, int line) {
    for (const auto& l : scopes_.back().locals) {
      if (l.name == name) return l.b;
    }
    bc_binding b;
    b.is_cell = inner_refs_.count(name) > 0;
    if (b.is_cell) {
      b.index = next_cell_++;
      if (next_cell_ > fn_->num_cells) fn_->num_cells = next_cell_;
      emit(opcode::make_cell, static_cast<std::int32_t>(b.index), 0, line);
    } else {
      b.index = next_slot_++;
      if (next_slot_ > fn_->num_slots) fn_->num_slots = next_slot_;
    }
    scopes_.back().locals.push_back(local{name, b});
    return b;
  }

  // A compiler-internal slot (never resolvable by name).
  std::uint32_t hidden_slot() {
    const std::uint32_t idx = next_slot_++;
    if (next_slot_ > fn_->num_slots) fn_->num_slots = next_slot_;
    scopes_.back().locals.push_back(local{std::string(), bc_binding{false, idx}});
    return idx;
  }

  void set_inner_refs(std::set<std::string> refs) { inner_refs_ = std::move(refs); }
  [[nodiscard]] bool is_captured_name(const std::string& name) const {
    return inner_refs_.count(name) > 0;
  }

  std::optional<bc_binding> resolve_local(const std::string& name) const {
    for (auto s = scopes_.rbegin(); s != scopes_.rend(); ++s) {
      if (s->global_backed) continue;  // top-level base scope holds globals
      for (auto l = s->locals.rbegin(); l != s->locals.rend(); ++l) {
        if (!l->name.empty() && l->name == name) return l->b;
      }
    }
    return std::nullopt;
  }

  std::uint32_t add_capture(capture_src src) {
    for (std::size_t i = 0; i < fn_->captures.size(); ++i) {
      if (fn_->captures[i].from_parent_cell == src.from_parent_cell &&
          fn_->captures[i].index == src.index) {
        return static_cast<std::uint32_t>(i);
      }
    }
    fn_->captures.push_back(src);
    return static_cast<std::uint32_t>(fn_->captures.size() - 1);
  }

  // Resolves `name` as a capture from enclosing functions, threading the
  // capture through every intermediate function (Lua-style upvalues).
  std::optional<std::uint32_t> resolve_capture(const std::string& name) {
    if (parent_ == nullptr) return std::nullopt;
    if (auto b = parent_->resolve_local(name)) {
      if (!b->is_cell) return std::nullopt;  // pre-scan missed it; treat as global
      return add_capture(capture_src{true, b->index});
    }
    if (auto idx = parent_->resolve_capture(name)) {
      return add_capture(capture_src{false, *idx});
    }
    return std::nullopt;
  }

  reference resolve(const std::string& name) {
    if (auto b = resolve_local(name)) {
      return reference{b->is_cell ? reference::kind::cell : reference::kind::slot, b->index};
    }
    if (auto idx = resolve_capture(name)) {
      return reference{reference::kind::capture, *idx};
    }
    return reference{reference::kind::global, 0};
  }

  // --- loop / try bookkeeping --------------------------------------------------
  struct loop_ctx {
    bool is_switch = false;
    std::size_t try_depth = 0;               // try_stack_.size() at entry
    std::size_t continue_target = 0;         // valid when continue_known
    bool continue_known = false;
    std::vector<std::size_t> break_jumps;
    std::vector<std::size_t> continue_jumps;
  };
  struct try_ctx {
    const stmt* finally_ast = nullptr;  // one runtime handler per entry
  };

  std::vector<loop_ctx> loops_;
  std::vector<try_ctx> try_stack_;

  std::uint32_t retval_slot() const { return retval_slot_; }
  void set_retval_slot(std::uint32_t s) { retval_slot_ = s; }

 private:
  struct local {
    std::string name;
    bc_binding b;
  };
  struct scope {
    std::vector<local> locals;
    std::uint32_t slot_mark = 0;
    std::uint32_t cell_mark = 0;
    bool global_backed = false;
  };

  compiled_fn* fn_;
  fn_compiler* parent_;
  std::vector<scope> scopes_;
  std::uint32_t next_slot_ = 0;
  std::uint32_t next_cell_ = 0;
  std::set<std::string> inner_refs_;
  std::map<std::string, std::size_t> string_consts_;
  std::map<double, std::size_t> number_consts_;
  std::uint32_t retval_slot_ = 0;
};

// ----- superinstruction fusion -----------------------------------------------
// Post-pass over a finished function's code (before the chunk freezes into
// its shared-immutable form): rewrite the hottest adjacent opcode pairs
// (picked from `bench_interpreter --profile-pairs` on the workload suite)
// into single fused opcodes. op2 is left in place so every jump target keeps
// its instruction index — a branch INTO op2 executes it standalone, which is
// still correct; the fused handler executes both halves, charges both
// halves' fuel, and skips op2. Fusion is greedy left-to-right and
// non-overlapping: once a pair fuses, its op2 cannot also start a pair
// (it is no longer dispatched in straight-line flow).
void fuse_code(std::vector<bc_instr>& code) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const opcode a = code[i].op;
    const opcode b = code[i + 1].op;
    opcode fused = a;
    if (a == opcode::load_local && b == opcode::get_prop) {
      fused = opcode::load_local_get_prop;
    } else if (a == opcode::load_global && b == opcode::get_prop) {
      fused = opcode::load_global_get_prop;
    } else if (a == opcode::load_local && b == opcode::load_local &&
               (i + 2 >= code.size() || code[i + 2].op != opcode::get_prop)) {
      // Greedy-overlap exception: leave the second load free to fuse with a
      // following get_prop (the more valuable pair).
      fused = opcode::load_local_load_local;
    } else if (a == opcode::binary_lc && b == opcode::jump_if_false) {
      fused = opcode::binary_lc_jump_if_false;
    } else if (a == opcode::binary_ll && b == opcode::jump_if_false) {
      fused = opcode::binary_ll_jump_if_false;
    }
    if (fused == a) continue;
    code[i].op = fused;
    ++i;  // op2 is consumed by the fused handler; don't start a pair at it
  }
}

class program_compiler {
 public:
  explicit program_compiler(bool fuse) : fuse_(fuse) {}

  compiled_program_ptr compile(const program_ptr& prog) {
    auto out = std::make_shared<compiled_program>();
    out->name = prog->name;

    auto top = std::make_shared<compiled_fn>();
    top->name = prog->name;
    top->is_toplevel = true;

    fn_compiler fc(top.get(), nullptr, /*global_backed_base=*/true);
    std::set<std::string> refs;
    for (const auto& s : prog->body) collect_inner_refs_stmt(*s, refs);
    fc.set_inner_refs(std::move(refs));

    current_ = &fc;
    hoist_functions(prog->body);
    for (const auto& s : prog->body) compile_stmt(*s);
    fc.emit(opcode::ret_undefined, 0, 0, 0);
    current_ = nullptr;
    if (fuse_) fuse_code(top->code);

    out->top = top;
    out->instruction_count = count_instructions(*top);
    return out;
  }

 private:
  bool fuse_ = true;
  fn_compiler* current_ = nullptr;

  static std::size_t count_instructions(const compiled_fn& fn) {
    std::size_t n = fn.code.size();
    for (const auto& nested : fn.fns) n += count_instructions(*nested);
    return n;
  }

  fn_compiler& cur() { return *current_; }

  // ----- function compilation ---------------------------------------------------

  std::int32_t compile_function(const function_lit& lit) {
    auto nested = std::make_shared<compiled_fn>();
    nested->name = lit.name;

    fn_compiler fc(nested.get(), current_, /*global_backed_base=*/false);
    std::set<std::string> refs;
    for (const auto& s : lit.body) collect_inner_refs_stmt(*s, refs);
    fc.set_inner_refs(std::move(refs));

    // The `arguments` extras array is only materialized when some code could
    // read it (directly or from a nested closure). Statement-granular early
    // exit: most bodies never mention the name, and ones that do usually
    // mention it early.
    std::set<std::string> all_names;
    for (const auto& s : lit.body) {
      collect_names_stmt(*s, all_names);
      if (all_names.count("arguments") > 0) {
        nested->uses_arguments = true;
        break;
      }
    }

    fn_compiler* saved = current_;
    current_ = &fc;

    // Frame layout: hidden return-value slot first (used by
    // return-through-finally), then this/params/arguments bindings.
    fc.set_retval_slot(fc.hidden_slot());
    nested->this_binding = fc.declare_local("this", lit.line);
    for (const auto& p : lit.params) {
      nested->params.push_back(fc.declare_local(p, lit.line));
    }
    nested->arguments_binding = fc.declare_local("arguments", lit.line);

    // NOTE: declare_local emits make_cell for boxed bindings, but the VM
    // prologue allocates cells for this/params/arguments itself, so strip any
    // prologue-emitted instructions.
    nested->code.clear();

    hoist_functions(lit.body);
    for (const auto& s : lit.body) compile_stmt(*s);
    fc.emit(opcode::ret_undefined, 0, 0, lit.line);

    current_ = saved;
    if (fuse_) fuse_code(nested->code);
    cur().fn()->fns.push_back(std::move(nested));
    return static_cast<std::int32_t>(cur().fn()->fns.size() - 1);
  }

  void hoist_functions(const std::vector<stmt_ptr>& body) {
    // Captured (boxed) vars declared in this block are pre-declared at block
    // entry so a closure created BEFORE the var statement executes captures
    // the same cell the later declaration initializes. The tree-walker gets
    // this for free by resolving through the environment chain at call time;
    // without this, `var f = function() { return x; }; var x = 5; f();`
    // would mis-bind x to a global. Non-captured names stay declared at their
    // statement (so earlier reads still see outer bindings, matching the
    // oracle), and the cell is per-block-entry, preserving per-iteration
    // capture semantics in loops.
    if (!cur().in_global_scope()) {
      for (const auto& s : body) {
        if (s->kind != stmt_kind::var_decl) continue;
        for (const auto& [name, init] : static_cast<const var_decl&>(*s).declarations) {
          if (cur().is_captured_name(name)) cur().declare_local(name, s->line);
        }
      }
    }
    for (const auto& s : body) {
      if (s->kind != stmt_kind::function_decl) continue;
      const auto& decl = static_cast<const function_decl&>(*s);
      const std::string& name = decl.function->name;
      if (cur().in_global_scope()) {
        cur().emit(opcode::push_undefined, 0, 0, s->line);
        cur().emit(opcode::store_global, cur().const_string(name), cur().next_ic(), s->line);
        cur().emit(opcode::pop, 0, 0, s->line);
      } else {
        const bc_binding b = cur().declare_local(name, s->line);
        cur().emit(opcode::push_undefined, 0, 0, s->line);
        emit_store_discard(b, s->line);
      }
    }
  }

  // ----- identifier access ------------------------------------------------------

  void load_reference(const fn_compiler::reference& ref, const std::string& name, int line,
                      bool soft = false) {
    using K = fn_compiler::reference::kind;
    switch (ref.k) {
      case K::slot:
        cur().emit(opcode::load_local, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::cell:
        cur().emit(opcode::load_cell, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::capture:
        cur().emit(opcode::load_capture, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::global:
        cur().emit(soft ? opcode::load_global_soft : opcode::load_global,
                   cur().const_string(name), cur().next_ic(), line);
        return;
    }
  }

  void store_reference(const fn_compiler::reference& ref, const std::string& name, int line) {
    using K = fn_compiler::reference::kind;
    switch (ref.k) {
      case K::slot:
        cur().emit(opcode::store_local, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::cell:
        cur().emit(opcode::store_cell, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::capture:
        cur().emit(opcode::store_capture, static_cast<std::int32_t>(ref.index), 0, line);
        return;
      case K::global:
        cur().emit(opcode::store_global, cur().const_string(name), cur().next_ic(), line);
        return;
    }
  }

  // Statement-position store: the value is discarded, so slot/cell targets
  // use the fused popping form instead of store + pop.
  void emit_store_discard(const bc_binding& b, int line) {
    cur().emit(b.is_cell ? opcode::store_cell_pop : opcode::store_local_pop,
               static_cast<std::int32_t>(b.index), 0, line);
  }

  // ----- operand classification for fused binary forms --------------------------

  struct operand_class {
    enum class kind { slot, constant, other } k = kind::other;
    std::int32_t index = 0;
  };

  operand_class classify(const expr& e) {
    operand_class out;
    if (e.kind == expr_kind::number_lit) {
      out.k = operand_class::kind::constant;
      out.index = cur().const_number(static_cast<const number_lit&>(e).value);
      return out;
    }
    if (e.kind == expr_kind::string_lit) {
      out.k = operand_class::kind::constant;
      out.index = cur().const_string(static_cast<const string_lit&>(e).value);
      return out;
    }
    if (e.kind == expr_kind::identifier) {
      const auto& id = static_cast<const identifier&>(e);
      const auto ref = cur().resolve(id.name);
      if (ref.k == fn_compiler::reference::kind::slot) {
        out.k = operand_class::kind::slot;
        out.index = static_cast<std::int32_t>(ref.index);
        return out;
      }
    }
    return out;
  }

  // ----- statements -------------------------------------------------------------

  // Compiles an expression whose value is discarded (expression statements,
  // for-loop steps). Assignments and updates targeting plain locals use the
  // fused stack-free forms.
  void compile_expr_discard(const expr& e) {
    using K = fn_compiler::reference::kind;
    if (e.kind == expr_kind::update) {
      const auto& u = static_cast<const update_expr&>(e);
      if (u.target->kind == expr_kind::identifier) {
        const auto& id = static_cast<const identifier&>(*u.target);
        const auto ref = cur().resolve(id.name);
        const std::int32_t flags = u.op == "--" ? 2 : 0;
        if (ref.k == K::slot) {
          cur().emit(opcode::update_local, static_cast<std::int32_t>(ref.index), flags,
                     u.line);
          return;
        }
        if (ref.k == K::cell) {
          cur().emit(opcode::update_cell, static_cast<std::int32_t>(ref.index), flags,
                     u.line);
          return;
        }
      }
    }
    if (e.kind == expr_kind::assign) {
      const auto& a = static_cast<const assign_expr&>(e);
      if (a.target->kind == expr_kind::identifier) {
        const auto& id = static_cast<const identifier&>(*a.target);
        const auto ref = cur().resolve(id.name);
        if (ref.k == K::slot || ref.k == K::cell) {
          compile_expr(*a.value);
          if (a.op != "=") {
            load_reference(ref, id.name, a.line, /*soft=*/true);
            cur().emit(opcode::swap, 0, 0, a.line);
            cur().emit(opcode::compound,
                       static_cast<std::int32_t>(compound_op(a.op, a.line)), 0, a.line);
          }
          emit_store_discard(bc_binding{ref.k == K::cell, ref.index}, a.line);
          return;
        }
      }
    }
    compile_expr(e);
    cur().emit(opcode::pop, 0, 0, e.line);
  }

  void compile_stmt(const stmt& s) {
    switch (s.kind) {
      case stmt_kind::empty_stmt:
        return;

      case stmt_kind::expr_stmt:
        compile_expr_discard(*static_cast<const expr_stmt&>(s).expression);
        return;

      case stmt_kind::var_decl: {
        const auto& decl = static_cast<const var_decl&>(s);
        for (const auto& [name, init] : decl.declarations) {
          // The initializer is evaluated before the name is declared, so
          // `var x = x;` resolves the right-hand x to the outer binding.
          if (init) {
            compile_expr(*init);
          } else {
            cur().emit(opcode::push_undefined, 0, 0, s.line);
          }
          if (cur().in_global_scope()) {
            cur().emit(opcode::store_global, cur().const_string(name), cur().next_ic(),
                       s.line);
            cur().emit(opcode::pop, 0, 0, s.line);
          } else {
            emit_store_discard(cur().declare_local(name, s.line), s.line);
          }
        }
        return;
      }

      case stmt_kind::block: {
        const auto& block = static_cast<const block_stmt&>(s);
        cur().begin_scope();
        hoist_functions(block.body);
        for (const auto& st : block.body) compile_stmt(*st);
        cur().end_scope();
        return;
      }

      case stmt_kind::if_stmt: {
        const auto& node = static_cast<const if_stmt&>(s);
        compile_expr(*node.condition);
        const std::size_t jf = cur().emit(opcode::jump_if_false, 0, 0, s.line);
        compile_stmt(*node.then_branch);
        if (node.else_branch) {
          const std::size_t je = cur().emit(opcode::jump, 0, 0, s.line);
          cur().patch(jf, cur().here());
          compile_stmt(*node.else_branch);
          cur().patch(je, cur().here());
        } else {
          cur().patch(jf, cur().here());
        }
        return;
      }

      case stmt_kind::while_stmt: {
        const auto& node = static_cast<const while_stmt&>(s);
        const std::size_t test = cur().here();
        compile_expr(*node.condition);
        const std::size_t jf = cur().emit(opcode::jump_if_false, 0, 0, s.line);
        begin_loop(test);
        compile_stmt(*node.body);
        cur().emit(opcode::loop_back, static_cast<std::int32_t>(test), 0, s.line);
        cur().patch(jf, cur().here());
        end_loop(cur().here(), test);
        return;
      }

      case stmt_kind::do_while_stmt: {
        const auto& node = static_cast<const do_while_stmt&>(s);
        const std::size_t body_start = cur().here();
        begin_loop_deferred();
        compile_stmt(*node.body);
        const std::size_t cond_at = cur().here();
        compile_expr(*node.condition);
        const std::size_t jf = cur().emit(opcode::jump_if_false, 0, 0, s.line);
        cur().emit(opcode::loop_back, static_cast<std::int32_t>(body_start), 0, s.line);
        cur().patch(jf, cur().here());
        end_loop(cur().here(), cond_at);
        return;
      }

      case stmt_kind::for_stmt: {
        const auto& node = static_cast<const for_stmt&>(s);
        cur().begin_scope();
        if (node.init) compile_stmt(*node.init);
        const std::size_t test = cur().here();
        std::size_t jf = 0;
        bool has_cond = node.condition != nullptr;
        if (has_cond) {
          compile_expr(*node.condition);
          jf = cur().emit(opcode::jump_if_false, 0, 0, s.line);
        }
        begin_loop_deferred();
        compile_stmt(*node.body);
        const std::size_t step_at = cur().here();
        if (node.step) compile_expr_discard(*node.step);
        cur().emit(opcode::loop_back, static_cast<std::int32_t>(test), 0, s.line);
        if (has_cond) cur().patch(jf, cur().here());
        end_loop(cur().here(), step_at);
        cur().end_scope();
        return;
      }

      case stmt_kind::for_in_stmt:
        compile_for_in(static_cast<const for_in_stmt&>(s));
        return;

      case stmt_kind::return_stmt: {
        const auto& node = static_cast<const return_stmt&>(s);
        if (cur().is_toplevel()) {
          cur().emit(opcode::push_const,
                     cur().const_string("illegal top-level break/continue/return"), 0, s.line);
          cur().emit(opcode::throw_op, /*engine_error=*/1, 0, s.line);
          return;
        }
        if (node.value) {
          compile_expr(*node.value);
        } else {
          cur().emit(opcode::push_undefined, 0, 0, s.line);
        }
        if (cur().try_stack_.empty()) {
          cur().emit(opcode::ret, 0, 0, s.line);
          return;
        }
        // Unwind every enclosing try: stash the value, run the finallys,
        // then return the stashed value.
        cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(cur().retval_slot()), 0,
                   s.line);
        unwind_trys(0, s.line);
        cur().emit(opcode::load_local, static_cast<std::int32_t>(cur().retval_slot()), 0,
                   s.line);
        cur().emit(opcode::ret, 0, 0, s.line);
        return;
      }

      case stmt_kind::break_stmt:
      case stmt_kind::continue_stmt: {
        const bool is_break = s.kind == stmt_kind::break_stmt;
        fn_compiler::loop_ctx* target = nullptr;
        for (auto it = cur().loops_.rbegin(); it != cur().loops_.rend(); ++it) {
          if (is_break || !it->is_switch) {
            target = &*it;
            break;
          }
        }
        if (target == nullptr) {
          const char* msg = cur().is_toplevel() ? "illegal top-level break/continue/return"
                                                : "break/continue escaped function body";
          cur().emit(opcode::push_const, cur().const_string(msg), 0, s.line);
          cur().emit(opcode::throw_op, /*engine_error=*/1, 0, s.line);
          return;
        }
        unwind_trys(target->try_depth, s.line);
        const std::size_t j = cur().emit(opcode::jump, 0, 0, s.line);
        if (is_break) {
          target->break_jumps.push_back(j);
        } else if (target->continue_known) {
          cur().patch(j, target->continue_target);
        } else {
          target->continue_jumps.push_back(j);
        }
        return;
      }

      case stmt_kind::function_decl: {
        const auto& decl = static_cast<const function_decl&>(s);
        const std::int32_t idx = compile_function(*decl.function);
        cur().emit(opcode::make_closure, idx, 0, s.line);
        const std::string& name = decl.function->name;
        using K = fn_compiler::reference::kind;
        const auto ref =
            cur().in_global_scope() ? fn_compiler::reference{K::global, 0} : cur().resolve(name);
        if (ref.k == K::slot || ref.k == K::cell) {
          emit_store_discard(bc_binding{ref.k == K::cell, ref.index}, s.line);
        } else {
          store_reference(ref, name, s.line);
          cur().emit(opcode::pop, 0, 0, s.line);
        }
        return;
      }

      case stmt_kind::throw_stmt: {
        const auto& node = static_cast<const throw_stmt&>(s);
        compile_expr(*node.value);
        cur().emit(opcode::throw_op, 0, 0, s.line);
        return;
      }

      case stmt_kind::try_stmt:
        compile_try(static_cast<const try_stmt&>(s));
        return;

      case stmt_kind::switch_stmt:
        compile_switch(static_cast<const switch_stmt&>(s));
        return;
    }
    compile_fail("unhandled statement kind", s.line);
  }

  void begin_loop(std::size_t continue_target) {
    fn_compiler::loop_ctx ctx;
    ctx.try_depth = cur().try_stack_.size();
    ctx.continue_target = continue_target;
    ctx.continue_known = true;
    cur().loops_.push_back(std::move(ctx));
  }
  void begin_loop_deferred() {
    fn_compiler::loop_ctx ctx;
    ctx.try_depth = cur().try_stack_.size();
    cur().loops_.push_back(std::move(ctx));
  }
  void end_loop(std::size_t break_target, std::size_t continue_target) {
    fn_compiler::loop_ctx ctx = std::move(cur().loops_.back());
    cur().loops_.pop_back();
    for (const std::size_t j : ctx.break_jumps) cur().patch(j, break_target);
    for (const std::size_t j : ctx.continue_jumps) cur().patch(j, continue_target);
  }

  // Emits pop_handler + inline finally blocks for every try context deeper
  // than `target_depth`. The contexts are temporarily popped while their
  // finally code compiles so a nested break/return inside the finally does
  // not unwind the same try again; they are restored afterwards because
  // compilation continues inside the protected region.
  void unwind_trys(std::size_t target_depth, int line) {
    std::vector<fn_compiler::try_ctx> saved;
    while (cur().try_stack_.size() > target_depth) {
      fn_compiler::try_ctx ctx = cur().try_stack_.back();
      cur().try_stack_.pop_back();
      cur().emit(opcode::pop_handler, 0, 0, line);
      if (ctx.finally_ast != nullptr) compile_stmt(*ctx.finally_ast);
      saved.push_back(ctx);
    }
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      cur().try_stack_.push_back(*it);
    }
  }

  void compile_for_in(const for_in_stmt& node) {
    cur().begin_scope();

    // Matching the tree-walker: the target object is evaluated first, then a
    // declaring loop binds its variable (one binding for the whole loop).
    compile_expr(*node.object);
    cur().emit(opcode::keys, 0, 0, node.line);
    const std::uint32_t karr = cur().hidden_slot();
    cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(karr), 0, node.line);

    if (node.declares) {
      cur().emit(opcode::push_undefined, 0, 0, node.line);
      emit_store_discard(cur().declare_local(node.variable, node.line), node.line);
    }

    const std::uint32_t kidx = cur().hidden_slot();
    cur().emit(opcode::push_const, cur().const_number(0.0), 0, node.line);
    cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(kidx), 0, node.line);

    // One fused step per iteration: push the next key (advancing the index)
    // or exit. `continue` re-enters at the test, so the advance stays
    // exactly once per iteration.
    const std::size_t test = cur().here();
    const std::size_t step = cur().emit_c(opcode::forin_next, 0,
                                          static_cast<std::int32_t>(karr),
                                          static_cast<std::int32_t>(kidx), node.line);
    {
      using K = fn_compiler::reference::kind;
      const auto ref = cur().resolve(node.variable);
      if (ref.k == K::slot || ref.k == K::cell) {
        emit_store_discard(bc_binding{ref.k == K::cell, ref.index}, node.line);
      } else {
        store_reference(ref, node.variable, node.line);
        cur().emit(opcode::pop, 0, 0, node.line);
      }
    }

    begin_loop_deferred();
    compile_stmt(*node.body);
    cur().emit(opcode::loop_back, static_cast<std::int32_t>(test), 0, node.line);
    cur().patch(step, cur().here());
    end_loop(cur().here(), test);

    cur().end_scope();
  }

  void compile_try(const try_stmt& node) {
    const bool has_catch = node.catch_block != nullptr;
    const bool has_finally = node.finally_block != nullptr;

    std::size_t finally_handler = 0;
    std::uint32_t exc_slot = 0;
    if (has_finally) {
      exc_slot = cur().hidden_slot();
      finally_handler = cur().emit(opcode::push_handler, 0, 0, node.line);
      cur().try_stack_.push_back(fn_compiler::try_ctx{node.finally_block.get()});
    }

    std::size_t catch_handler = 0;
    if (has_catch) {
      catch_handler = cur().emit(opcode::push_handler, 0, 0, node.line);
      cur().try_stack_.push_back(fn_compiler::try_ctx{nullptr});
    }

    compile_stmt(*node.try_block);

    std::size_t after_catch_jump = 0;
    if (has_catch) {
      cur().emit(opcode::pop_handler, 0, 0, node.line);
      cur().try_stack_.pop_back();
      after_catch_jump = cur().emit(opcode::jump, 0, 0, node.line);

      cur().patch(catch_handler, cur().here());
      // Handler entry: the thrown value is on the stack.
      cur().begin_scope();
      emit_store_discard(cur().declare_local(node.catch_name, node.line), node.line);
      compile_stmt(*node.catch_block);
      cur().end_scope();
      cur().patch(after_catch_jump, cur().here());
    }

    if (has_finally) {
      cur().emit(opcode::pop_handler, 0, 0, node.line);
      cur().try_stack_.pop_back();
      compile_stmt(*node.finally_block);  // normal-completion path
      const std::size_t over = cur().emit(opcode::jump, 0, 0, node.line);

      cur().patch(finally_handler, cur().here());
      // Handler entry: exception on the stack. Stash it, run the finally,
      // rethrow (unless the finally itself completed abruptly, in which case
      // control never reaches the rethrow — "finally overrides").
      cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(exc_slot), 0, node.line);
      compile_stmt(*node.finally_block);
      cur().emit(opcode::load_local, static_cast<std::int32_t>(exc_slot), 0, node.line);
      cur().emit(opcode::throw_op, 0, 0, node.line);
      cur().patch(over, cur().here());
    }
  }

  void compile_switch(const switch_stmt& node) {
    cur().begin_scope();
    compile_expr(*node.discriminant);
    const std::uint32_t disc = cur().hidden_slot();
    cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(disc), 0, node.line);

    fn_compiler::loop_ctx ctx;
    ctx.is_switch = true;
    ctx.try_depth = cur().try_stack_.size();
    cur().loops_.push_back(std::move(ctx));

    // First the tests in order (lazy, like the tree-walker's first pass),
    // then a jump to the default clause (or the end), then the bodies in
    // order with natural fallthrough.
    std::vector<std::size_t> case_jumps(node.cases.size(), SIZE_MAX);
    for (std::size_t i = 0; i < node.cases.size(); ++i) {
      if (!node.cases[i].test) continue;
      cur().emit(opcode::load_local, static_cast<std::int32_t>(disc), 0, node.line);
      compile_expr(*node.cases[i].test);
      cur().emit(opcode::binary, static_cast<std::int32_t>(binop::seq), 0, node.line);
      case_jumps[i] = cur().emit(opcode::jump_if_true, 0, 0, node.line);
    }
    const std::size_t to_default = cur().emit(opcode::jump, 0, 0, node.line);

    std::size_t default_target = SIZE_MAX;
    for (std::size_t i = 0; i < node.cases.size(); ++i) {
      const std::size_t body_start = cur().here();
      if (case_jumps[i] != SIZE_MAX) cur().patch(case_jumps[i], body_start);
      if (!node.cases[i].test && default_target == SIZE_MAX) default_target = body_start;
      for (const auto& st : node.cases[i].body) compile_stmt(*st);
    }
    const std::size_t end = cur().here();
    cur().patch(to_default, default_target == SIZE_MAX ? end : default_target);

    fn_compiler::loop_ctx done = std::move(cur().loops_.back());
    cur().loops_.pop_back();
    for (const std::size_t j : done.break_jumps) cur().patch(j, end);

    cur().end_scope();
  }

  // ----- expressions ------------------------------------------------------------

  void compile_expr(const expr& e) {
    switch (e.kind) {
      case expr_kind::number_lit:
        cur().emit(opcode::push_const,
                   cur().const_number(static_cast<const number_lit&>(e).value), 0, e.line);
        return;
      case expr_kind::string_lit:
        cur().emit(opcode::push_const,
                   cur().const_string(static_cast<const string_lit&>(e).value), 0, e.line);
        return;
      case expr_kind::bool_lit:
        cur().emit(static_cast<const bool_lit&>(e).value ? opcode::push_true
                                                         : opcode::push_false,
                   0, 0, e.line);
        return;
      case expr_kind::null_lit:
        cur().emit(opcode::push_null, 0, 0, e.line);
        return;
      case expr_kind::undefined_lit:
        cur().emit(opcode::push_undefined, 0, 0, e.line);
        return;

      case expr_kind::identifier: {
        const auto& id = static_cast<const identifier&>(e);
        load_reference(cur().resolve(id.name), id.name, e.line);
        return;
      }

      case expr_kind::this_expr: {
        // Inside functions `this` resolves as a normal local binding; at the
        // top level it falls back to a (soft) global lookup, matching the
        // tree-walker's env->find("this").
        const auto ref = cur().resolve("this");
        load_reference(ref, "this", e.line, /*soft=*/true);
        return;
      }

      case expr_kind::array_lit: {
        const auto& lit = static_cast<const array_lit&>(e);
        for (const auto& el : lit.elements) compile_expr(*el);
        cur().emit(opcode::make_array, static_cast<std::int32_t>(lit.elements.size()), 0,
                   e.line);
        return;
      }

      case expr_kind::object_lit: {
        const auto& lit = static_cast<const object_lit&>(e);
        for (const auto& [key, val] : lit.entries) {
          cur().emit(opcode::push_const, cur().const_string(key), 0, e.line);
          compile_expr(*val);
        }
        cur().emit(opcode::make_object, static_cast<std::int32_t>(lit.entries.size()), 0,
                   e.line);
        return;
      }

      case expr_kind::function_lit: {
        const std::int32_t idx = compile_function(static_cast<const function_lit&>(e));
        cur().emit(opcode::make_closure, idx, 0, e.line);
        return;
      }

      case expr_kind::member: {
        const auto& m = static_cast<const member_expr&>(e);
        compile_expr(*m.object);
        cur().emit(opcode::get_prop, cur().const_string(m.property), cur().next_ic(),
                   e.line);
        return;
      }

      case expr_kind::index: {
        const auto& ix = static_cast<const index_expr&>(e);
        compile_expr(*ix.object);
        compile_expr(*ix.index);
        cur().emit(opcode::get_index, 0, 0, e.line);
        return;
      }

      case expr_kind::call:
        compile_call(static_cast<const call_expr&>(e));
        return;

      case expr_kind::new_call: {
        const auto& n = static_cast<const new_expr&>(e);
        compile_expr(*n.callee);
        cur().emit(opcode::check_ctor, 0, 0, e.line);
        for (const auto& a : n.args) compile_expr(*a);
        cur().emit(opcode::call_new, static_cast<std::int32_t>(n.args.size()), 0, e.line);
        return;
      }

      case expr_kind::unary:
        compile_unary(static_cast<const unary_expr&>(e));
        return;

      case expr_kind::binary: {
        const auto& b = static_cast<const binary_expr&>(e);
        const auto opt_op = binop_from_string(b.op);
        if (!opt_op) compile_fail("unknown binary operator " + b.op, e.line);
        const auto op = static_cast<std::int32_t>(*opt_op);
        const operand_class lc = classify(*b.left);
        const operand_class rc = classify(*b.right);
        using ock = operand_class::kind;
        if (lc.k == ock::slot && rc.k == ock::slot) {
          cur().emit_c(opcode::binary_ll, op, lc.index, rc.index, e.line);
          return;
        }
        if (lc.k == ock::slot && rc.k == ock::constant) {
          cur().emit_c(opcode::binary_lc, op, lc.index, rc.index, e.line);
          return;
        }
        if (lc.k == ock::constant && rc.k == ock::slot) {
          cur().emit_c(opcode::binary_cl, op, lc.index, rc.index, e.line);
          return;
        }
        if (lc.k == ock::slot && is_pure(*b.right)) {
          // Reading the left slot after the right operand is unobservable
          // because the right operand cannot modify any binding.
          compile_expr(*b.right);
          cur().emit(opcode::binary_ls, op, lc.index, e.line);
          return;
        }
        compile_expr(*b.left);
        if (rc.k == ock::slot) {
          cur().emit(opcode::binary_sl, op, rc.index, e.line);
          return;
        }
        if (rc.k == ock::constant) {
          cur().emit(opcode::binary_sc, op, rc.index, e.line);
          return;
        }
        compile_expr(*b.right);
        cur().emit(opcode::binary, op, 0, e.line);
        return;
      }

      case expr_kind::logical: {
        const auto& l = static_cast<const logical_expr&>(e);
        compile_expr(*l.left);
        const std::size_t j =
            cur().emit(l.op == "&&" ? opcode::jump_if_false_keep : opcode::jump_if_true_keep,
                       0, 0, e.line);
        compile_expr(*l.right);
        cur().patch(j, cur().here());
        return;
      }

      case expr_kind::conditional: {
        const auto& c = static_cast<const conditional_expr&>(e);
        compile_expr(*c.condition);
        const std::size_t jf = cur().emit(opcode::jump_if_false, 0, 0, e.line);
        compile_expr(*c.if_true);
        const std::size_t je = cur().emit(opcode::jump, 0, 0, e.line);
        cur().patch(jf, cur().here());
        compile_expr(*c.if_false);
        cur().patch(je, cur().here());
        return;
      }

      case expr_kind::assign:
        compile_assign(static_cast<const assign_expr&>(e));
        return;

      case expr_kind::update:
        compile_update(static_cast<const update_expr&>(e));
        return;
    }
    compile_fail("unhandled expression kind", e.line);
  }

  void compile_call(const call_expr& c) {
    if (c.callee->kind == expr_kind::member) {
      const auto& m = static_cast<const member_expr&>(*c.callee);
      compile_expr(*m.object);
      cur().emit(opcode::get_method, cur().const_string(m.property), cur().next_ic(),
                 c.line);
      for (const auto& a : c.args) compile_expr(*a);
      cur().emit(opcode::call_method, static_cast<std::int32_t>(c.args.size()), 0, c.line);
      return;
    }
    if (c.callee->kind == expr_kind::index) {
      const auto& ix = static_cast<const index_expr&>(*c.callee);
      compile_expr(*ix.object);
      compile_expr(*ix.index);
      cur().emit(opcode::get_index_method, cur().next_ic(), 0, c.line);
      for (const auto& a : c.args) compile_expr(*a);
      cur().emit(opcode::call_method, static_cast<std::int32_t>(c.args.size()), 0, c.line);
      return;
    }
    compile_expr(*c.callee);
    for (const auto& a : c.args) compile_expr(*a);
    cur().emit(opcode::call, static_cast<std::int32_t>(c.args.size()), 0, c.line);
  }

  void compile_unary(const unary_expr& u) {
    if (u.op == "typeof") {
      if (u.operand->kind == expr_kind::identifier) {
        const auto& id = static_cast<const identifier&>(*u.operand);
        const auto ref = cur().resolve(id.name);
        if (ref.k == fn_compiler::reference::kind::global) {
          cur().emit(opcode::typeof_global, cur().const_string(id.name), 0, u.line);
          return;
        }
        load_reference(ref, id.name, u.line);
        cur().emit(opcode::typeof_op, 0, 0, u.line);
        return;
      }
      compile_expr(*u.operand);
      cur().emit(opcode::typeof_op, 0, 0, u.line);
      return;
    }
    if (u.op == "delete") {
      if (u.operand->kind == expr_kind::member) {
        const auto& m = static_cast<const member_expr&>(*u.operand);
        compile_expr(*m.object);
        cur().emit(opcode::delete_prop, cur().const_string(m.property), 0, u.line);
        return;
      }
      if (u.operand->kind == expr_kind::index) {
        const auto& ix = static_cast<const index_expr&>(*u.operand);
        compile_expr(*ix.object);
        compile_expr(*ix.index);
        cur().emit(opcode::delete_index, 0, 0, u.line);
        return;
      }
      // The tree-walker does not evaluate other operand kinds.
      cur().emit(opcode::push_true, 0, 0, u.line);
      return;
    }
    compile_expr(*u.operand);
    if (u.op == "!") {
      cur().emit(opcode::not_op, 0, 0, u.line);
    } else if (u.op == "-") {
      cur().emit(opcode::negate, 0, 0, u.line);
    } else if (u.op == "+") {
      cur().emit(opcode::to_number, 0, 0, u.line);
    } else if (u.op == "~") {
      cur().emit(opcode::bit_not, 0, 0, u.line);
    } else {
      compile_fail("unknown unary operator " + u.op, u.line);
    }
  }

  binop compound_op(const std::string& op, int line) {
    const auto b = binop_from_string(op.substr(0, op.size() - 1));
    if (!b) compile_fail("unknown compound operator " + op, line);
    return *b;
  }

  void compile_assign(const assign_expr& a) {
    const bool compound = a.op != "=";

    if (a.target->kind == expr_kind::identifier) {
      const auto& id = static_cast<const identifier&>(*a.target);
      // RHS first: its evaluation may declare bindings (tree-walker order).
      compile_expr(*a.value);
      const auto ref = cur().resolve(id.name);
      if (compound) {
        // current value; an undeclared identifier reads as undefined here.
        load_reference(ref, id.name, a.line, /*soft=*/true);
        cur().emit(opcode::swap, 0, 0, a.line);
        cur().emit(opcode::compound, static_cast<std::int32_t>(compound_op(a.op, a.line)), 0,
                   a.line);
      }
      store_reference(ref, id.name, a.line);
      return;
    }

    if (a.target->kind == expr_kind::member) {
      const auto& m = static_cast<const member_expr&>(*a.target);
      compile_expr(*m.object);
      compile_expr(*a.value);
      const std::int32_t name = cur().const_string(m.property);
      if (compound) {
        const std::uint32_t rhs = cur().hidden_slot();
        cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(rhs), 0, a.line);
        cur().emit(opcode::dup, 0, 0, a.line);
        cur().emit(opcode::get_prop, name, cur().next_ic(), a.line);
        cur().emit(opcode::load_local, static_cast<std::int32_t>(rhs), 0, a.line);
        cur().emit(opcode::compound, static_cast<std::int32_t>(compound_op(a.op, a.line)), 0,
                   a.line);
      }
      cur().emit(opcode::set_prop, name, cur().next_ic(), a.line);
      return;
    }

    const auto& ix = static_cast<const index_expr&>(*a.target);
    compile_expr(*ix.object);
    compile_expr(*ix.index);
    compile_expr(*a.value);
    if (compound) {
      const std::uint32_t rhs = cur().hidden_slot();
      const std::uint32_t idx = cur().hidden_slot();
      cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(rhs), 0, a.line);
      cur().emit(opcode::store_local_pop, static_cast<std::int32_t>(idx), 0, a.line);
      cur().emit(opcode::dup, 0, 0, a.line);
      cur().emit(opcode::load_local, static_cast<std::int32_t>(idx), 0, a.line);
      cur().emit(opcode::get_index, 0, 0, a.line);
      cur().emit(opcode::load_local, static_cast<std::int32_t>(rhs), 0, a.line);
      cur().emit(opcode::compound, static_cast<std::int32_t>(compound_op(a.op, a.line)), 0,
                 a.line);
      cur().emit(opcode::load_local, static_cast<std::int32_t>(idx), 0, a.line);
      cur().emit(opcode::swap, 0, 0, a.line);
    }
    cur().emit(opcode::set_index, 0, 0, a.line);
  }

  void compile_update(const update_expr& u) {
    const bool decrement = u.op == "--";
    const std::int32_t flags =
        (u.prefix ? 1 : 0) | (decrement ? 2 : 0);

    if (u.target->kind == expr_kind::identifier) {
      const auto& id = static_cast<const identifier&>(*u.target);
      const auto ref = cur().resolve(id.name);
      load_reference(ref, id.name, u.line);  // hard load: undeclared is an error
      cur().emit(opcode::to_number, 0, 0, u.line);
      if (!u.prefix) cur().emit(opcode::dup, 0, 0, u.line);
      cur().emit(opcode::push_const, cur().const_number(1.0), 0, u.line);
      cur().emit(opcode::binary,
                 static_cast<std::int32_t>(decrement ? binop::sub : binop::add), 0, u.line);
      store_reference(ref, id.name, u.line);
      if (!u.prefix) cur().emit(opcode::pop, 0, 0, u.line);
      return;
    }

    if (u.target->kind == expr_kind::member) {
      const auto& m = static_cast<const member_expr&>(*u.target);
      compile_expr(*m.object);
      cur().emit_c(opcode::update_prop, cur().const_string(m.property), flags,
                   cur().next_ic(), u.line);
      return;
    }

    const auto& ix = static_cast<const index_expr&>(*u.target);
    compile_expr(*ix.object);
    compile_expr(*ix.index);
    cur().emit(opcode::update_index, 0, flags, u.line);
  }
};

}  // namespace

compiled_program_ptr compile_program(const program_ptr& prog) {
  return compile_program(prog, compile_options{});
}

compiled_program_ptr compile_program(const program_ptr& prog, const compile_options& opts) {
  program_compiler pc(opts.fuse);
  return pc.compile(prog);
}

}  // namespace nakika::js
