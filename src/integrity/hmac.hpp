// HMAC-SHA256 (RFC 2104). Substitutes for the paper's public-key
// X-Signature: the origin and the trusted registry share a key, which
// preserves the integrity/freshness semantics without an offline RSA/DSA
// implementation (documented in DESIGN.md).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "integrity/sha256.hpp"

namespace nakika::integrity {

[[nodiscard]] sha256_digest hmac_sha256(std::string_view key,
                                        std::span<const std::uint8_t> message);
[[nodiscard]] sha256_digest hmac_sha256(std::string_view key, std::string_view message);
[[nodiscard]] std::string hmac_sha256_hex(std::string_view key, std::string_view message);

// Constant-time comparison so signature checks don't leak timing.
[[nodiscard]] bool digests_equal(const sha256_digest& a, const sha256_digest& b);

}  // namespace nakika::integrity
