#include "integrity/verification.hpp"

#include <stdexcept>

#include "integrity/sha256.hpp"

namespace nakika::integrity {

verification_registry::verification_registry(std::size_t eviction_threshold)
    : eviction_threshold_(eviction_threshold) {
  if (eviction_threshold == 0) {
    throw std::invalid_argument("verification_registry: threshold must be >= 1");
  }
}

void verification_registry::register_node(const std::string& node) {
  members_.insert(node);
}

bool verification_registry::is_member(const std::string& node) const {
  return members_.contains(node);
}

bool verification_registry::report_mismatch(const std::string& accused,
                                            const std::string& reporter) {
  if (!members_.contains(accused)) return false;
  auto& reporters = reports_[accused];
  reporters.insert(reporter);
  if (reporters.size() >= eviction_threshold_) {
    members_.erase(accused);
    evicted_.push_back(accused);
    reports_.erase(accused);
    return true;
  }
  return false;
}

std::size_t verification_registry::report_count(const std::string& node) const {
  const auto it = reports_.find(node);
  return it == reports_.end() ? 0 : it->second.size();
}

probabilistic_verifier::probabilistic_verifier(verification_registry& registry,
                                               double sample_probability, util::rng& rng)
    : registry_(registry), sample_probability_(sample_probability), rng_(rng) {
  if (sample_probability < 0.0 || sample_probability > 1.0) {
    throw std::invalid_argument("probabilistic_verifier: probability out of range");
  }
}

bool probabilistic_verifier::should_verify() { return rng_.chance(sample_probability_); }

bool probabilistic_verifier::check(const std::string& served_by, const std::string& reporter,
                                   std::string_view original_body,
                                   std::string_view replayed_body) {
  ++checks_;
  if (sha256_hex(original_body) == sha256_hex(replayed_body)) return true;
  ++mismatches_;
  registry_.report_mismatch(served_by, reporter);
  return false;
}

}  // namespace nakika::integrity
