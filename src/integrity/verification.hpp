// Probabilistic verification of processed content (paper §6, future work):
// a trusted registry maintains membership; clients forward a fraction of
// received content to a second proxy which repeats the processing; mismatches
// are reported and misbehaving nodes evicted.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/random.hpp"

namespace nakika::integrity {

// Trusted registry of edge-node membership with report-based eviction.
class verification_registry {
 public:
  // A node is evicted once it accumulates `eviction_threshold` mismatch
  // reports from distinct reporters.
  explicit verification_registry(std::size_t eviction_threshold = 3);

  void register_node(const std::string& node);
  [[nodiscard]] bool is_member(const std::string& node) const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  // Records that `reporter` observed `accused` serving content that did not
  // match an independent re-execution. Returns true if this report caused
  // eviction.
  bool report_mismatch(const std::string& accused, const std::string& reporter);

  [[nodiscard]] std::size_t report_count(const std::string& node) const;
  [[nodiscard]] const std::vector<std::string>& evicted() const { return evicted_; }

 private:
  std::size_t eviction_threshold_;
  std::unordered_set<std::string> members_;
  std::unordered_map<std::string, std::unordered_set<std::string>> reports_;
  std::vector<std::string> evicted_;
};

// Client-side sampling: decides which responses to double-check and compares
// the two executions.
class probabilistic_verifier {
 public:
  probabilistic_verifier(verification_registry& registry, double sample_probability,
                         util::rng& rng);

  // Returns true if this response should be re-executed elsewhere.
  [[nodiscard]] bool should_verify();

  // Compares `original` against `replayed` (body digests). On mismatch,
  // reports `served_by` to the registry. Returns true when contents matched.
  bool check(const std::string& served_by, const std::string& reporter,
             std::string_view original_body, std::string_view replayed_body);

  [[nodiscard]] std::size_t checks_performed() const { return checks_; }
  [[nodiscard]] std::size_t mismatches_found() const { return mismatches_; }

 private:
  verification_registry& registry_;
  double sample_probability_;
  util::rng& rng_;
  std::size_t checks_ = 0;
  std::size_t mismatches_ = 0;
};

}  // namespace nakika::integrity
