// Static content integrity (paper §6): origins attach
//   X-Content-SHA256: hex digest of the body (integrity; precomputable)
//   X-Signature:      HMAC over the content hash + cache-control headers
//                     (freshness; requires absolute Expires, because edge
//                     nodes cannot be trusted to decrement relative ages)
// and edge nodes verify both before serving cached copies.
#pragma once

#include <cstdint>
#include <string>

#include "http/message.hpp"

namespace nakika::http {
struct response;
}

namespace nakika::integrity {

enum class verify_result {
  ok,
  missing_headers,     // response carries no integrity headers
  hash_mismatch,       // body does not match X-Content-SHA256
  signature_mismatch,  // X-Signature does not verify
  relative_expiry,     // Cache-Control max-age present; absolute Expires required
  stale,               // signed Expires has passed
};

[[nodiscard]] const char* to_string(verify_result r);

// Attaches integrity headers to `r`, signing with `key`. Requires an
// absolute Expires header; sets one `lifetime_seconds` ahead of `now` if the
// response lacks it. Strips Cache-Control max-age (relative times defeat
// freshness checking by untrusted nodes).
void sign_response(http::response& r, std::string_view key, std::int64_t now,
                   std::int64_t lifetime_seconds = 3600);

// Verifies integrity + freshness at virtual time `now`.
[[nodiscard]] verify_result verify_response(const http::response& r, std::string_view key,
                                            std::int64_t now);

}  // namespace nakika::integrity
