#include "integrity/hmac.hpp"

#include <array>
#include <cstring>

#include "util/bytes.hpp"

namespace nakika::integrity {

sha256_digest hmac_sha256(std::string_view key, std::span<const std::uint8_t> message) {
  constexpr std::size_t block_size = 64;
  std::array<std::uint8_t, block_size> key_block{};
  if (key.size() > block_size) {
    const sha256_digest hashed = sha256_hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, block_size> ipad;
  std::array<std::uint8_t, block_size> opad;
  for (std::size_t i = 0; i < block_size; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(message);
  const sha256_digest inner_digest = inner.finish();

  sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

sha256_digest hmac_sha256(std::string_view key, std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                         message.size()));
}

std::string hmac_sha256_hex(std::string_view key, std::string_view message) {
  const sha256_digest d = hmac_sha256(key, message);
  return util::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

bool digests_equal(const sha256_digest& a, const sha256_digest& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace nakika::integrity
