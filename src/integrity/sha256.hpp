// From-scratch SHA-256 (FIPS 180-4). The paper's X-Content-SHA256 header
// carries exactly this digest; no crypto library is assumed offline.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace nakika::integrity {

using sha256_digest = std::array<std::uint8_t, 32>;

class sha256 {
 public:
  sha256();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  // Finalizes and returns the digest; the object must not be reused after.
  [[nodiscard]] sha256_digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

[[nodiscard]] sha256_digest sha256_hash(std::span<const std::uint8_t> data);
[[nodiscard]] sha256_digest sha256_hash(std::string_view text);
[[nodiscard]] std::string sha256_hex(std::string_view text);
[[nodiscard]] std::string sha256_hex(std::span<const std::uint8_t> data);

}  // namespace nakika::integrity
