#include "integrity/content_integrity.hpp"

#include "http/cache_control.hpp"
#include "http/date.hpp"
#include "integrity/hmac.hpp"

namespace nakika::integrity {

namespace {
// The signed statement binds the content hash to the freshness deadline.
std::string signing_input(std::string_view content_hash, std::string_view expires) {
  return std::string(content_hash) + "\n" + std::string(expires);
}
}  // namespace

const char* to_string(verify_result r) {
  switch (r) {
    case verify_result::ok: return "ok";
    case verify_result::missing_headers: return "missing_headers";
    case verify_result::hash_mismatch: return "hash_mismatch";
    case verify_result::signature_mismatch: return "signature_mismatch";
    case verify_result::relative_expiry: return "relative_expiry";
    case verify_result::stale: return "stale";
  }
  return "?";
}

void sign_response(http::response& r, std::string_view key, std::int64_t now,
                   std::int64_t lifetime_seconds) {
  const std::string hash =
      r.body ? sha256_hex(r.body->span()) : sha256_hex(std::string_view{});
  r.headers.set("X-Content-SHA256", hash);

  // Absolute expiration only: untrusted nodes cannot be relied on to
  // decrement relative max-age values (paper §6).
  if (!r.headers.has("Expires")) {
    r.headers.set("Expires", http::format_http_date(now + lifetime_seconds));
  }
  auto directives = http::parse_cache_control(r.headers.get_or("Cache-Control", ""));
  if (directives.max_age || directives.s_maxage) {
    r.headers.remove("Cache-Control");
  }
  const std::string expires = r.headers.get_or("Expires", "");
  r.headers.set("X-Signature", hmac_sha256_hex(key, signing_input(hash, expires)));
}

verify_result verify_response(const http::response& r, std::string_view key,
                              std::int64_t now) {
  const auto hash = r.headers.get("X-Content-SHA256");
  const auto signature = r.headers.get("X-Signature");
  if (!hash || !signature) return verify_result::missing_headers;

  const std::string actual =
      r.body ? sha256_hex(r.body->span()) : sha256_hex(std::string_view{});
  if (actual != *hash) return verify_result::hash_mismatch;

  const auto directives = http::parse_cache_control(r.headers.get_or("Cache-Control", ""));
  if (directives.max_age || directives.s_maxage) return verify_result::relative_expiry;

  const std::string expires = r.headers.get_or("Expires", "");
  const std::string expected = hmac_sha256_hex(key, signing_input(*hash, expires));
  if (expected != *signature) return verify_result::signature_mismatch;

  const auto when = http::parse_http_date(expires);
  if (!when || *when <= now) return verify_result::stale;
  return verify_result::ok;
}

}  // namespace nakika::integrity
