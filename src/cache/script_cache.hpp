// Caches around script loading. Three pieces:
//   - ttl_cache<T>: generic expiring cache; core uses it for script sources
//     and decision trees ("decision trees are cached in a dedicated
//     in-memory cache", paper §4). Bounded (max_entries with
//     nearest-expiry eviction) and mutex-guarded so the multi-worker node
//     path can share one instance across threads.
//   - negative_cache: remembers that a site publishes no nakika.js, "thus
//     avoiding repeated checks for the nakika.js resource" (paper §4).
//   - lru_cache<T>: bounded string-keyed LRU; the node keys it by content
//     hash to cache compiled bytecode chunks so repeat requests skip
//     lex/parse/compile entirely.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace nakika::cache {

namespace detail {
// Evicts the map entry closest to expiry (the least valuable one to keep).
// `expiry_of` projects a mapped value to its expiry instant. The scan is
// bounded (Redis-style sampling): exact for small maps, approximate for
// large ones, so an insert into a full cache never pays an O(n) walk while
// holding the mutex the request path's get() also needs.
template <typename Map, typename ExpiryOf>
void evict_nearest_expiry(Map& entries, ExpiryOf expiry_of) {
  if (entries.empty()) return;
  constexpr std::size_t max_scan = 16;
  auto victim = entries.begin();
  std::size_t scanned = 0;
  for (auto it = entries.begin(); it != entries.end() && scanned < max_scan;
       ++it, ++scanned) {
    if (expiry_of(it->second) < expiry_of(victim->second)) victim = it;
  }
  entries.erase(victim);
}
}  // namespace detail

template <typename T>
class ttl_cache {
 public:
  explicit ttl_cache(std::size_t max_entries = 4096)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  [[nodiscard]] std::optional<T> get(const std::string& key, std::int64_t now) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    if (it->second.expires_at <= now) {
      entries_.erase(it);
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second.item;
  }

  void put(const std::string& key, T item, std::int64_t expires_at) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = {std::move(item), expires_at};
      return;
    }
    if (entries_.size() >= max_entries_) evict_one_locked();
    entries_.emplace(key, entry{std::move(item), expires_at});
  }

  // Sweeps every entry whose TTL has elapsed; returns how many were dropped.
  // Without this, an expired key that is never re-queried would linger until
  // capacity eviction happens to pick it.
  std::size_t purge_expired(std::int64_t now) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t purged = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.expires_at <= now) {
        it = entries_.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    return purged;
  }

  bool remove(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(key) > 0;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct entry {
    T item;
    std::int64_t expires_at = 0;
  };

  void evict_one_locked() {
    detail::evict_nearest_expiry(entries_, [](const entry& e) { return e.expires_at; });
  }

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::unordered_map<std::string, entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Remembers "this URL does not exist" verdicts with a TTL.
class negative_cache {
 public:
  explicit negative_cache(std::int64_t ttl_seconds = 300, std::size_t max_entries = 4096);

  [[nodiscard]] bool contains(const std::string& key, std::int64_t now);
  void insert(const std::string& key, std::int64_t now);
  bool remove(const std::string& key);
  std::size_t purge_expired(std::int64_t now);
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::int64_t ttl_seconds_;
  std::size_t max_entries_;
  std::unordered_map<std::string, std::int64_t> entries_;  // key -> expiry
};

// Bounded LRU keyed by string. Values are copied out under the lock, so T is
// typically a shared_ptr to an immutable payload (compiled chunks).
template <typename T>
class lru_cache {
 public:
  explicit lru_cache(std::size_t max_entries = 256)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  [[nodiscard]] std::optional<T> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->second;
  }

  void put(const std::string& key, T item) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(item);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(item));
    index_[key] = order_.begin();
    if (index_.size() > max_entries_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::list<std::pair<std::string, T>> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<std::pair<std::string, T>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nakika::cache
