// Caches around script loading. Two pieces:
//   - ttl_cache<T>: generic expiring cache; core uses it for compiled
//     programs and decision trees ("decision trees are cached in a dedicated
//     in-memory cache", paper §4).
//   - negative_cache: remembers that a site publishes no nakika.js, "thus
//     avoiding repeated checks for the nakika.js resource" (paper §4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace nakika::cache {

template <typename T>
class ttl_cache {
 public:
  [[nodiscard]] std::optional<T> get(const std::string& key, std::int64_t now) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    if (it->second.expires_at <= now) {
      entries_.erase(it);
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second.item;
  }

  void put(const std::string& key, T item, std::int64_t expires_at) {
    entries_[key] = {std::move(item), expires_at};
  }

  bool remove(const std::string& key) { return entries_.erase(key) > 0; }
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct entry {
    T item;
    std::int64_t expires_at = 0;
  };
  std::unordered_map<std::string, entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Remembers "this URL does not exist" verdicts with a TTL.
class negative_cache {
 public:
  explicit negative_cache(std::int64_t ttl_seconds = 300);

  [[nodiscard]] bool contains(const std::string& key, std::int64_t now);
  void insert(const std::string& key, std::int64_t now);
  bool remove(const std::string& key);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::int64_t ttl_seconds_;
  std::unordered_map<std::string, std::int64_t> entries_;  // key -> expiry
};

}  // namespace nakika::cache
