#include "cache/http_cache.hpp"

#include <algorithm>
#include <functional>

namespace nakika::cache {

namespace {

std::size_t pick_shard_count(std::size_t capacity_bytes, std::size_t requested) {
  if (requested != 0) return requested;
  if (capacity_bytes == 0) return 16;  // unlimited: shard purely for locking
  // Generous slices: an entry must fit one shard's capacity share, and LRU
  // order is per-shard, so more shards trade cacheable-object size and
  // global-LRU fidelity for lock spreading. 16 MiB slices keep the default
  // 256 MiB cache at 16 shards.
  constexpr std::size_t min_bytes_per_shard = 16 * 1024 * 1024;
  return std::clamp<std::size_t>(capacity_bytes / min_bytes_per_shard, 1, 16);
}

}  // namespace

http_cache::http_cache(std::size_t capacity_bytes, std::size_t shard_count)
    : capacity_bytes_(capacity_bytes),
      shard_count_(pick_shard_count(capacity_bytes, shard_count)),
      // Floor at 1 so a bounded cache with an oversubscribed shard count
      // degenerates to rejecting puts, never to unlimited growth.
      shard_capacity_bytes_(
          capacity_bytes_ == 0
              ? 0
              : std::max<std::size_t>(capacity_bytes_ / shard_count_, 1)),
      shards_(std::make_unique<shard[]>(shard_count_)) {}

http_cache::shard& http_cache::shard_for(const std::string& url) {
  return shards_[std::hash<std::string>{}(url) % shard_count_];
}

std::optional<http::response> http_cache::get(const std::string& url, std::int64_t now) {
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.expires_at <= now) {
    s.expirations.fetch_add(1, std::memory_order_relaxed);
    s.misses.fetch_add(1, std::memory_order_relaxed);
    drop_locked(s, it);
    return std::nullopt;
  }
  touch_locked(s, url, it->second);
  s.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.response;
}

bool http_cache::put(const std::string& url, const http::response& r, std::int64_t now) {
  const http::freshness f = http::compute_freshness(r, now);
  if (!f.cacheable) return false;
  return put_with_expiry(url, r, f.expires_at, now);
}

bool http_cache::put_with_expiry(const std::string& url, const http::response& r,
                                 std::int64_t expires_at, std::int64_t now) {
  if (expires_at <= now) return false;
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  return put_locked(s, url, r, expires_at);
}

bool http_cache::put_locked(shard& s, const std::string& url, const http::response& r,
                            std::int64_t expires_at) {
  const std::size_t body_bytes = r.body_size() + 256;  // headers overhead estimate
  if (shard_capacity_bytes_ != 0 && body_bytes > shard_capacity_bytes_) {
    s.oversized_rejections.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  drop_locked(s, url);  // replace any existing entry
  evict_for_locked(s, body_bytes);

  s.lru.push_front(url);
  entry e;
  e.response = r;
  e.expires_at = expires_at;
  e.charged_bytes = body_bytes;
  e.lru_it = s.lru.begin();
  s.bytes_used += body_bytes;
  s.entries.emplace(url, std::move(e));
  s.insertions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool http_cache::remove(const std::string& url) {
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) return false;
  drop_locked(s, it);
  return true;
}

void http_cache::clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shard& s = shards_[i];
    const std::lock_guard<std::mutex> lock(s.mu);
    s.entries.clear();
    s.lru.clear();
    s.bytes_used = 0;
  }
}

std::size_t http_cache::entry_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].entries.size();
  }
  return total;
}

std::size_t http_cache::bytes_used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].bytes_used;
  }
  return total;
}

cache_stats http_cache::stats() const {
  cache_stats total;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const shard& s = shards_[i];
    total.hits += s.hits.load(std::memory_order_relaxed);
    total.misses += s.misses.load(std::memory_order_relaxed);
    total.insertions += s.insertions.load(std::memory_order_relaxed);
    total.evictions += s.evictions.load(std::memory_order_relaxed);
    total.expirations += s.expirations.load(std::memory_order_relaxed);
    total.oversized_rejections += s.oversized_rejections.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<http_cache::shard_snapshot> http_cache::snapshot_shards() const {
  std::vector<shard_snapshot> out(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const shard& s = shards_[i];
    const std::lock_guard<std::mutex> lock(s.mu);
    out[i].entries = s.entries.size();
    out[i].lru_length = s.lru.size();
    out[i].bytes_used = s.bytes_used;
    for (const auto& [url, e] : s.entries) out[i].charged_bytes += e.charged_bytes;
  }
  return out;
}

void http_cache::touch_locked(shard& s, const std::string& url, entry& e) {
  s.lru.erase(e.lru_it);
  s.lru.push_front(url);
  e.lru_it = s.lru.begin();
}

void http_cache::evict_for_locked(shard& s, std::size_t incoming_bytes) {
  if (shard_capacity_bytes_ == 0) return;
  while (s.bytes_used + incoming_bytes > shard_capacity_bytes_ && !s.lru.empty()) {
    s.evictions.fetch_add(1, std::memory_order_relaxed);
    drop_locked(s, s.lru.back());
  }
}

void http_cache::drop_locked(shard& s, const std::string& url) {
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) return;
  drop_locked(s, it);
}

void http_cache::drop_locked(shard& s, entry_map::iterator it) {
  s.bytes_used -= it->second.charged_bytes;
  s.lru.erase(it->second.lru_it);
  s.entries.erase(it);
}

}  // namespace nakika::cache
