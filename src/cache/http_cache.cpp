#include "cache/http_cache.hpp"

#include <algorithm>
#include <functional>

namespace nakika::cache {

namespace {

std::size_t pick_shard_count(std::size_t capacity_bytes, std::size_t requested) {
  if (requested != 0) return requested;
  if (capacity_bytes == 0) return 16;  // unlimited: shard purely for locking
  // Generous slices: LRU order is per-shard, so more shards trade global-LRU
  // fidelity for lock spreading. 16 MiB slices keep the default 256 MiB
  // cache at 16 shards.
  constexpr std::size_t min_bytes_per_shard = 16 * 1024 * 1024;
  return std::clamp<std::size_t>(capacity_bytes / min_bytes_per_shard, 1, 16);
}

// CAS-reserves `amount` against `used <= limit`. The reservation becomes the
// entry's charge on success and must be released with fetch_sub on failure
// of a later step.
bool try_reserve(std::atomic<std::size_t>& used, std::size_t limit, std::size_t amount) {
  std::size_t cur = used.load(std::memory_order_relaxed);
  while (cur + amount <= limit) {
    if (used.compare_exchange_weak(cur, cur + amount, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// How many tail entries an eviction scan inspects before giving up. Bounds
// the worst case where the LRU tail is a long run of protected entries.
constexpr std::size_t k_evict_scan_limit = 64;

}  // namespace

http_cache::http_cache(std::size_t capacity_bytes, std::size_t shard_count,
                       bool shard_borrowing, bool admission)
    : capacity_bytes_(capacity_bytes),
      shard_count_(pick_shard_count(capacity_bytes, shard_count)),
      // Floor at 1 so a bounded cache with an oversubscribed shard count
      // degenerates to rejecting puts, never to unlimited growth.
      shard_capacity_bytes_(
          capacity_bytes_ == 0
              ? 0
              : std::max<std::size_t>(capacity_bytes_ / shard_count_, 1)),
      borrowing_(shard_borrowing),
      admission_(admission),
      shards_(std::make_unique<shard[]>(shard_count_)) {}

namespace {

// Ghost-table fingerprint for a key; never 0 so an empty slot never matches.
std::uint64_t ghost_hash(const std::string& url) {
  const std::uint64_t h = std::hash<std::string>{}(url);
  return h == 0 ? 1 : h;
}

}  // namespace

http_cache::shard& http_cache::shard_for(const std::string& url) {
  return shards_[std::hash<std::string>{}(url) % shard_count_];
}

std::string http_cache::tenant_of(const std::string& url) {
  const auto scheme = url.find("://");
  const std::size_t host_begin = scheme == std::string::npos ? 0 : scheme + 3;
  const auto host_end = url.find_first_of("/:?", host_begin);
  return url.substr(host_begin,
                    host_end == std::string::npos ? std::string::npos : host_end - host_begin);
}

http_cache::tenant_state* http_cache::tenant_for(const std::string& url) {
  if (tenants_.empty()) return nullptr;
  const auto it = tenants_.find(tenant_of(url));
  return it == tenants_.end() ? nullptr : &it->second;
}

void http_cache::set_tenant_quota(const std::string& tenant, std::size_t quota_bytes) {
  tenants_[tenant].quota = std::max<std::size_t>(quota_bytes, 1);
}

std::size_t http_cache::tenant_bytes(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.bytes.load(std::memory_order_relaxed);
}

std::size_t http_cache::tenant_quota(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.quota;
}

std::uint64_t http_cache::tenant_quota_rejections(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rejections.load(std::memory_order_relaxed);
}

std::optional<http::response> http_cache::get(const std::string& url, std::int64_t now) {
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.expires_at <= now) {
    s.expirations.fetch_add(1, std::memory_order_relaxed);
    s.misses.fetch_add(1, std::memory_order_relaxed);
    drop_locked(s, it);
    return std::nullopt;
  }
  touch_locked(s, url, it->second);
  s.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.response;
}

bool http_cache::put(const std::string& url, const http::response& r, std::int64_t now) {
  const http::freshness f = http::compute_freshness(r, now);
  if (!f.cacheable) return false;
  return put_with_expiry(url, r, f.expires_at, now);
}

bool http_cache::put_with_expiry(const std::string& url, const http::response& r,
                                 std::int64_t expires_at, std::int64_t now) {
  if (expires_at <= now) return false;
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  return put_locked(s, url, r, expires_at);
}

bool http_cache::put_locked(shard& s, const std::string& url, const http::response& r,
                            std::int64_t expires_at) {
  const std::size_t body_bytes = r.body_size() + 256;  // headers overhead estimate
  const std::size_t max_charge = borrowing_ ? capacity_bytes_ : shard_capacity_bytes_;
  if (max_charge != 0 && body_bytes > max_charge) {
    s.oversized_rejections.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const bool existed = s.entries.find(url) != s.entries.end();
  drop_locked(s, url);  // replace any existing entry

  // Admission: a first-seen key starts on probation. A replacement put or a
  // ghost-table match (the key was recently demoted and came back) is proven
  // reuse and goes straight to main.
  bool probation = admission_ && !existed;
  if (probation) {
    const std::uint64_t h = ghost_hash(url);
    if (s.ghosts[h & (s.ghosts.size() - 1)] == h) {
      s.ghosts[h & (s.ghosts.size() - 1)] = 0;
      probation = false;
    }
  }

  tenant_state* t = tenant_for(url);
  if (t != nullptr) {
    if (body_bytes > t->quota) {
      s.quota_rejections.fetch_add(1, std::memory_order_relaxed);
      t->rejections.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Quota crunch: only this tenant's own entries may be evicted to make
    // room for its insert — the cap never spills onto other tenants.
    std::size_t attempts = 0;
    while (!try_reserve(t->bytes, t->quota, body_bytes)) {
      if (++attempts > shard_count_ * 8 || !evict_one(s, t, /*only=*/t)) {
        s.quota_rejections.fetch_add(1, std::memory_order_relaxed);
        t->rejections.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }

  if (capacity_bytes_ == 0) {
    total_bytes_.fetch_add(body_bytes, std::memory_order_relaxed);
  } else if (borrowing_) {
    // Global bound: reserve against the atomic total, evicting (own shard
    // first, then stealing cold shards) until the reservation fits.
    std::size_t attempts = 0;
    bool reserved = true;
    while (!try_reserve(total_bytes_, capacity_bytes_, body_bytes)) {
      if (++attempts > shard_count_ * 8 || !evict_one(s, t, /*only=*/nullptr)) {
        reserved = false;
        break;
      }
    }
    if (!reserved) {
      if (t != nullptr) {
        t->bytes.fetch_sub(body_bytes, std::memory_order_relaxed);
        t->rejections.fetch_add(1, std::memory_order_relaxed);
      }
      s.quota_rejections.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    // Strict mode: the historical per-slice bound, but eviction skips other
    // configured tenants' entries so the starvation bound holds here too.
    while (s.bytes_used + body_bytes > shard_capacity_bytes_) {
      if (evict_one_from(s, t, /*only=*/nullptr) == 0) break;
    }
    if (s.bytes_used + body_bytes > shard_capacity_bytes_) {
      if (t != nullptr) {
        t->bytes.fetch_sub(body_bytes, std::memory_order_relaxed);
        t->rejections.fetch_add(1, std::memory_order_relaxed);
      }
      s.quota_rejections.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    total_bytes_.fetch_add(body_bytes, std::memory_order_relaxed);
  }

  entry e;
  e.response = r;
  e.expires_at = expires_at;
  e.charged_bytes = body_bytes;
  e.tenant = t;
  e.probation = probation;
  if (probation) {
    s.prob.push_front(url);
    e.lru_it = s.prob.begin();
    s.prob_bytes += body_bytes;
  } else {
    s.lru.push_front(url);
    e.lru_it = s.lru.begin();
  }
  s.bytes_used += body_bytes;
  s.entries.emplace(url, std::move(e));
  s.insertions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool http_cache::remove(const std::string& url) {
  shard& s = shard_for(url);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) return false;
  drop_locked(s, it);
  return true;
}

void http_cache::clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shard& s = shards_[i];
    const std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [url, e] : s.entries) {
      total_bytes_.fetch_sub(e.charged_bytes, std::memory_order_relaxed);
      if (e.tenant != nullptr) {
        e.tenant->bytes.fetch_sub(e.charged_bytes, std::memory_order_relaxed);
      }
    }
    s.entries.clear();
    s.lru.clear();
    s.prob.clear();
    s.prob_bytes = 0;
    s.ghosts.fill(0);
    s.bytes_used = 0;
  }
}

std::size_t http_cache::entry_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].entries.size();
  }
  return total;
}

std::size_t http_cache::bytes_used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].bytes_used;
  }
  return total;
}

cache_stats http_cache::stats() const {
  cache_stats total;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const shard& s = shards_[i];
    total.hits += s.hits.load(std::memory_order_relaxed);
    total.misses += s.misses.load(std::memory_order_relaxed);
    total.insertions += s.insertions.load(std::memory_order_relaxed);
    total.evictions += s.evictions.load(std::memory_order_relaxed);
    total.expirations += s.expirations.load(std::memory_order_relaxed);
    total.oversized_rejections += s.oversized_rejections.load(std::memory_order_relaxed);
    total.quota_rejections += s.quota_rejections.load(std::memory_order_relaxed);
    total.admission_rejected += s.admission_rejected.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t http_cache::probation_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].prob.size();
  }
  return total;
}

std::vector<http_cache::shard_snapshot> http_cache::snapshot_shards() const {
  std::vector<shard_snapshot> out(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const shard& s = shards_[i];
    const std::lock_guard<std::mutex> lock(s.mu);
    out[i].entries = s.entries.size();
    out[i].lru_length = s.lru.size() + s.prob.size();
    out[i].bytes_used = s.bytes_used;
    for (const auto& [url, e] : s.entries) out[i].charged_bytes += e.charged_bytes;
  }
  return out;
}

void http_cache::touch_locked(shard& s, const std::string& url, entry& e) {
  if (e.probation) {
    // Second access: promotion out of probation into the main LRU.
    s.prob.erase(e.lru_it);
    s.prob_bytes -= e.charged_bytes;
    e.probation = false;
  } else {
    s.lru.erase(e.lru_it);
  }
  s.lru.push_front(url);
  e.lru_it = s.lru.begin();
}

std::size_t http_cache::evict_scan(shard& s, std::list<std::string>& order,
                                   bool from_probation, const tenant_state* inserting,
                                   const tenant_state* only) {
  std::size_t scanned = 0;
  for (auto it = order.rbegin(); it != order.rend() && scanned < k_evict_scan_limit;
       ++it, ++scanned) {
    const auto e = s.entries.find(*it);
    const tenant_state* et = e->second.tenant;
    // `only` set: quota crunch, evict only that tenant's entries. Otherwise
    // a capacity crunch: any entry is fair game except those owned by a
    // *different* configured tenant (its quota is a reservation).
    const bool eligible = only != nullptr ? et == only : (et == nullptr || et == inserting);
    if (!eligible) continue;
    const std::size_t freed = e->second.charged_bytes;
    if (from_probation) {
      // Demoted before its second access: remember the ghost so a re-insert
      // skips probation, and count the one-hit wonder kept out of main.
      const std::uint64_t h = ghost_hash(*it);
      s.ghosts[h & (s.ghosts.size() - 1)] = h;
      s.admission_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    s.evictions.fetch_add(1, std::memory_order_relaxed);
    drop_locked(s, e);
    return freed;
  }
  return 0;
}

std::size_t http_cache::evict_one_from(shard& s, const tenant_state* inserting,
                                       const tenant_state* only) {
  // Probation pays for capacity first once it holds its ~10% share of the
  // shard slice (or main is empty) — the scan-resistance property: a stream
  // of one-hit wonders churns through probation while main's hot set stays.
  // Below the share, main's LRU tail goes first (probation entries deserve a
  // grace window to earn their second access), with the other list as the
  // fallback so a full cache can always make progress.
  const bool prob_first =
      !s.prob.empty() && (s.lru.empty() || s.prob_bytes >= probation_target_bytes());
  std::list<std::string>& first = prob_first ? s.prob : s.lru;
  std::list<std::string>& second = prob_first ? s.lru : s.prob;
  if (const std::size_t freed = evict_scan(s, first, prob_first, inserting, only); freed > 0) {
    return freed;
  }
  return evict_scan(s, second, !prob_first, inserting, only);
}

bool http_cache::evict_one(shard& home, const tenant_state* inserting,
                           const tenant_state* only) {
  if (evict_one_from(home, inserting, only) > 0) return true;
  // Steal from another shard. try_lock only: a contended shard is skipped
  // rather than blocked on, so two inserters stealing from each other's
  // shards cannot deadlock.
  const auto home_index = static_cast<std::size_t>(&home - shards_.get());
  for (std::size_t off = 1; off < shard_count_; ++off) {
    shard& other = shards_[(home_index + off) % shard_count_];
    if (!other.mu.try_lock()) continue;
    const std::lock_guard<std::mutex> lock(other.mu, std::adopt_lock);
    if (evict_one_from(other, inserting, only) > 0) return true;
  }
  return false;
}

void http_cache::drop_locked(shard& s, const std::string& url) {
  const auto it = s.entries.find(url);
  if (it == s.entries.end()) return;
  drop_locked(s, it);
}

void http_cache::drop_locked(shard& s, entry_map::iterator it) {
  s.bytes_used -= it->second.charged_bytes;
  total_bytes_.fetch_sub(it->second.charged_bytes, std::memory_order_relaxed);
  if (it->second.tenant != nullptr) {
    it->second.tenant->bytes.fetch_sub(it->second.charged_bytes, std::memory_order_relaxed);
  }
  if (it->second.probation) {
    s.prob.erase(it->second.lru_it);
    s.prob_bytes -= it->second.charged_bytes;
  } else {
    s.lru.erase(it->second.lru_it);
  }
  s.entries.erase(it);
}

}  // namespace nakika::cache
