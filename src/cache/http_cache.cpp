#include "cache/http_cache.hpp"

namespace nakika::cache {

http_cache::http_cache(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

std::optional<http::response> http_cache::get(const std::string& url, std::int64_t now) {
  const auto it = entries_.find(url);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.expires_at <= now) {
    ++stats_.expirations;
    ++stats_.misses;
    drop(url);
    return std::nullopt;
  }
  touch(url, it->second);
  ++stats_.hits;
  return it->second.response;
}

bool http_cache::put(const std::string& url, const http::response& r, std::int64_t now) {
  const http::freshness f = http::compute_freshness(r, now);
  if (!f.cacheable) return false;
  put_with_expiry(url, r, f.expires_at, now);
  return true;
}

void http_cache::put_with_expiry(const std::string& url, const http::response& r,
                                 std::int64_t expires_at, std::int64_t now) {
  if (expires_at <= now) return;
  const std::size_t body_bytes = r.body_size() + 256;  // headers overhead estimate
  if (capacity_bytes_ != 0 && body_bytes > capacity_bytes_) return;

  drop(url);  // replace any existing entry
  evict_for(body_bytes);

  lru_.push_front(url);
  entry e;
  e.response = r;
  e.expires_at = expires_at;
  e.charged_bytes = body_bytes;
  e.lru_it = lru_.begin();
  bytes_used_ += body_bytes;
  entries_.emplace(url, std::move(e));
  ++stats_.insertions;
}

bool http_cache::remove(const std::string& url) {
  if (!entries_.contains(url)) return false;
  drop(url);
  return true;
}

void http_cache::clear() {
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

void http_cache::touch(const std::string& url, entry& e) {
  lru_.erase(e.lru_it);
  lru_.push_front(url);
  e.lru_it = lru_.begin();
}

void http_cache::evict_for(std::size_t incoming_bytes) {
  if (capacity_bytes_ == 0) return;
  while (bytes_used_ + incoming_bytes > capacity_bytes_ && !lru_.empty()) {
    ++stats_.evictions;
    drop(lru_.back());
  }
}

void http_cache::drop(const std::string& url) {
  const auto it = entries_.find(url);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.charged_bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace nakika::cache
