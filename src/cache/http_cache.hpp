// Expiration-based proxy cache (the role mod_proxy's cache plays in the
// paper). Keys are full URLs; freshness follows http::compute_freshness;
// capacity is bounded with LRU eviction. The same cache stores original and
// processed content — the paper's pipeline caches transformed responses by
// rewritten URL.
//
// The cache is sharded for concurrent execution: URLs hash to one of N
// shards, each with its own mutex, LRU list, and byte accounting, so worker
// threads hitting different shards never contend. Statistics are per-shard
// atomic counters aggregated on read.
//
// Capacity has two modes. With shard borrowing (the default), the bound is
// global: an insert reserves bytes against an atomic total via CAS, and when
// the cache is full it evicts its own shard's LRU tail first, then steals
// cold capacity from other shards (try_lock only — never blocks on another
// shard, so no lock-order deadlock). A hot shard can therefore use the whole
// cache instead of thrashing inside its 1/N slice. In strict mode
// (borrowing off), capacity is split evenly and an entry must fit within a
// single shard's slice — the historical behavior some invariant tests pin.
//
// Multi-tenant isolation: a tenant is the URL's host. set_tenant_quota gives
// a tenant a byte budget that is both a cap (its inserts evict its own
// entries once the budget is full, never other tenants') and a reservation
// (other tenants' inserts never evict a configured tenant's entries). This
// is the cache half of the scenario tier's starvation bound: one tenant's
// object storm cannot push another tenant's working set out.
//
// Scan-resistant admission (S3-FIFO/CLOCK-style, default on): a first-seen
// URL enters a small per-shard probation FIFO instead of the main LRU; a hit
// while on probation promotes it to main. Under capacity pressure the
// probation tail is evicted first once probation holds ~10% of the shard's
// slice, so a flash-crowd tail of one-hit wonders churns through probation
// while the promoted hot set in main stays resident. A small per-shard ghost
// table remembers recently demoted keys; re-inserting one bypasses probation
// (its second life proves reuse). Quotas and shard borrowing apply
// unchanged — probation entries are charged and protected exactly like main
// entries, only their eviction order differs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/cache_control.hpp"
#include "http/message.hpp"

namespace nakika::cache {

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  // Puts dropped because the body exceeded the largest charge a single entry
  // may take (one shard's slice in strict mode, the whole cache with
  // borrowing). A large-object workload that never hits shows up here, not
  // as a silent miss.
  std::uint64_t oversized_rejections = 0;
  // Puts dropped by tenant isolation: the inserting tenant's quota could not
  // be freed (all its resident entries already gone), or every eviction
  // candidate belonged to a protected tenant.
  std::uint64_t quota_rejections = 0;
  // Probation entries evicted before ever being promoted — one-hit wonders
  // the admission policy kept out of the main LRU.
  std::uint64_t admission_rejected = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class http_cache {
 public:
  // `capacity_bytes` bounds the sum of cached body sizes (0 = unlimited).
  // `shard_count` of 0 auto-sizes: one shard per 16 MiB of capacity, clamped
  // to [1, 16], so small caches keep exact global-LRU behavior while large
  // ones spread lock pressure. `shard_borrowing` selects the global-bound
  // mode described above; pass false for strict per-shard slices.
  // `admission` selects the scan-resistant probation policy described
  // above; pass false for the pure-LRU behavior (node_config::cache_admission
  // wires this through the proxy).
  explicit http_cache(std::size_t capacity_bytes = 256 * 1024 * 1024,
                      std::size_t shard_count = 0, bool shard_borrowing = true,
                      bool admission = true);

  // Fresh entry for `url` at virtual time `now`, or nullopt. Expired entries
  // are dropped on access.
  [[nodiscard]] std::optional<http::response> get(const std::string& url, std::int64_t now);

  // Stores if the response is cacheable per its headers. Returns true when
  // stored. Oversized bodies are never stored.
  bool put(const std::string& url, const http::response& r, std::int64_t now);

  // Stores with an explicit expiry regardless of cacheability headers (used
  // for processed content whose lifetime the script chooses). Returns true
  // when stored; past expiries and oversized bodies are rejected.
  bool put_with_expiry(const std::string& url, const http::response& r,
                       std::int64_t expires_at, std::int64_t now);

  bool remove(const std::string& url);
  void clear();

  // Gives `tenant` (a URL host, e.g. "a.example.org") a byte budget: cap and
  // eviction protection as documented above. Setup-time only — must be
  // called before the cache is used concurrently; quotas cannot be changed
  // while workers are serving.
  void set_tenant_quota(const std::string& tenant, std::size_t quota_bytes);
  // Bytes currently charged to a configured tenant (0 for unknown tenants).
  [[nodiscard]] std::size_t tenant_bytes(const std::string& tenant) const;
  [[nodiscard]] std::size_t tenant_quota(const std::string& tenant) const;
  // Puts of this tenant dropped by quota/capacity pressure (the per-tenant
  // split of cache_stats::quota_rejections; 0 for unconfigured tenants).
  [[nodiscard]] std::uint64_t tenant_quota_rejections(const std::string& tenant) const;

  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] cache_stats stats() const;
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t shard_capacity_bytes() const { return shard_capacity_bytes_; }
  [[nodiscard]] bool shard_borrowing() const { return borrowing_; }
  [[nodiscard]] bool admission_enabled() const { return admission_; }
  // Entries currently on probation (not yet promoted), across all shards.
  [[nodiscard]] std::size_t probation_count() const;

  // The host a cache key is charged to (public for tests).
  [[nodiscard]] static std::string tenant_of(const std::string& url);

  // Consistent per-shard view for tests and monitoring: locks each shard in
  // turn and recomputes `charged_bytes` by walking its entries, so accounting
  // drift shows up as charged_bytes != bytes_used.
  struct shard_snapshot {
    std::size_t entries = 0;
    std::size_t lru_length = 0;
    std::size_t bytes_used = 0;
    std::size_t charged_bytes = 0;
  };
  [[nodiscard]] std::vector<shard_snapshot> snapshot_shards() const;

 private:
  struct tenant_state {
    std::size_t quota = 0;
    // Resident + in-flight reserved bytes; CAS-reserved so the quota is a
    // strict bound even under concurrent inserts.
    std::atomic<std::size_t> bytes{0};
    // This tenant's share of quota_rejections (telemetry per-tenant rows).
    std::atomic<std::uint64_t> rejections{0};
  };

  struct entry {
    http::response response;
    std::int64_t expires_at = 0;
    std::size_t charged_bytes = 0;
    tenant_state* tenant = nullptr;  // nullptr = unconfigured tenant
    // On probation: lru_it points into the shard's prob list, not lru.
    bool probation = false;
    std::list<std::string>::iterator lru_it;
  };

  using entry_map = std::unordered_map<std::string, entry>;

  // Cache-line aligned so neighboring shards' mutexes and counters never
  // false-share.
  struct alignas(64) shard {
    mutable std::mutex mu;
    // Guarded by `mu`.
    entry_map entries;
    std::list<std::string> lru;   // main list, front = most recent
    std::list<std::string> prob;  // probation FIFO, front = newest insert
    std::size_t prob_bytes = 0;
    // Ghost table: hashes of recently demoted probation keys. A re-insert
    // matching its slot is admitted straight to main (proven reuse). Fixed
    // size, direct-mapped — collisions just lose the readmission hint.
    std::array<std::uint64_t, 256> ghosts{};
    std::size_t bytes_used = 0;
    // Monotonic; incremented under `mu`, read lock-free by stats().
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> expirations{0};
    std::atomic<std::uint64_t> oversized_rejections{0};
    std::atomic<std::uint64_t> quota_rejections{0};
    std::atomic<std::uint64_t> admission_rejected{0};
  };

  [[nodiscard]] shard& shard_for(const std::string& url);
  [[nodiscard]] tenant_state* tenant_for(const std::string& url);
  bool put_locked(shard& s, const std::string& url, const http::response& r,
                  std::int64_t expires_at);
  // Refreshes recency: probation entries are promoted into main (their
  // second access), main entries move to the LRU front.
  static void touch_locked(shard& s, const std::string& url, entry& e);
  // Probation share of a shard slice at which capacity evictions switch to
  // the probation tail (the ~10% small-queue sizing of S3-FIFO).
  [[nodiscard]] std::size_t probation_target_bytes() const {
    return shard_capacity_bytes_ == 0 ? 0 : std::max<std::size_t>(shard_capacity_bytes_ / 10, 1);
  }
  // Victim scan over one list's tail; shared by evict_one_from's two passes.
  std::size_t evict_scan(shard& s, std::list<std::string>& order, bool from_probation,
                         const tenant_state* inserting, const tenant_state* only);
  // Evicts the least-recent eligible entry of `s` (lock held): entries of
  // `only` when set, otherwise any entry not protected by another tenant's
  // quota. Returns bytes freed (0 = nothing eligible).
  std::size_t evict_one_from(shard& s, const tenant_state* inserting,
                             const tenant_state* only);
  // Same, but falls back to stealing from other shards via try_lock when the
  // home shard has nothing eligible.
  bool evict_one(shard& home, const tenant_state* inserting, const tenant_state* only);
  void drop_locked(shard& s, const std::string& url);
  void drop_locked(shard& s, entry_map::iterator it);

  std::size_t capacity_bytes_;
  std::size_t shard_count_;
  std::size_t shard_capacity_bytes_;  // capacity_bytes_ / shard_count_ (0 = unlimited)
  bool borrowing_;
  bool admission_;
  // Resident + in-flight reserved bytes across all shards; the CAS bound in
  // borrowing mode, a statistic in strict mode.
  std::atomic<std::size_t> total_bytes_{0};
  std::unique_ptr<shard[]> shards_;
  // Frozen after setup (set_tenant_quota); read lock-free while serving.
  std::unordered_map<std::string, tenant_state> tenants_;
};

}  // namespace nakika::cache
