// Expiration-based proxy cache (the role mod_proxy's cache plays in the
// paper). Keys are full URLs; freshness follows http::compute_freshness;
// capacity is bounded with LRU eviction. The same cache stores original and
// processed content — the paper's pipeline caches transformed responses by
// rewritten URL.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/cache_control.hpp"
#include "http/message.hpp"

namespace nakika::cache {

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class http_cache {
 public:
  // `capacity_bytes` bounds the sum of cached body sizes (0 = unlimited).
  explicit http_cache(std::size_t capacity_bytes = 256 * 1024 * 1024);

  // Fresh entry for `url` at virtual time `now`, or nullopt. Expired entries
  // are dropped on access.
  [[nodiscard]] std::optional<http::response> get(const std::string& url, std::int64_t now);

  // Stores if the response is cacheable per its headers. Returns true when
  // stored. Oversized bodies (> capacity) are never stored.
  bool put(const std::string& url, const http::response& r, std::int64_t now);

  // Stores unconditionally with an explicit expiry (used for processed
  // content whose lifetime the script chooses).
  void put_with_expiry(const std::string& url, const http::response& r,
                       std::int64_t expires_at, std::int64_t now);

  bool remove(const std::string& url);
  void clear();

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] const cache_stats& stats() const { return stats_; }

 private:
  struct entry {
    http::response response;
    std::int64_t expires_at = 0;
    std::size_t charged_bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void touch(const std::string& url, entry& e);
  void evict_for(std::size_t incoming_bytes);
  void drop(const std::string& url);

  std::size_t capacity_bytes_;
  std::size_t bytes_used_ = 0;
  std::unordered_map<std::string, entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  cache_stats stats_;
};

}  // namespace nakika::cache
