// Expiration-based proxy cache (the role mod_proxy's cache plays in the
// paper). Keys are full URLs; freshness follows http::compute_freshness;
// capacity is bounded with LRU eviction. The same cache stores original and
// processed content — the paper's pipeline caches transformed responses by
// rewritten URL.
//
// The cache is sharded for concurrent execution: URLs hash to one of N
// shards, each with its own mutex, LRU list, and byte accounting, so worker
// threads hitting different shards never contend. Statistics are per-shard
// atomic counters aggregated on read. Capacity is split evenly across
// shards; an entry must fit within a single shard's slice, and LRU ordering
// is per-shard (global LRU semantics hold exactly when shard_count == 1,
// which auto-sizing picks for small capacities).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/cache_control.hpp"
#include "http/message.hpp"

namespace nakika::cache {

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  // Puts dropped because the body exceeded one shard's capacity slice. A
  // large-object workload that never hits shows up here, not as a silent miss.
  std::uint64_t oversized_rejections = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class http_cache {
 public:
  // `capacity_bytes` bounds the sum of cached body sizes (0 = unlimited).
  // `shard_count` of 0 auto-sizes: one shard per 16 MiB of capacity, clamped
  // to [1, 16], so small caches keep exact global-LRU behavior while large
  // ones spread lock pressure without shrinking the slice an entry must fit.
  explicit http_cache(std::size_t capacity_bytes = 256 * 1024 * 1024,
                      std::size_t shard_count = 0);

  // Fresh entry for `url` at virtual time `now`, or nullopt. Expired entries
  // are dropped on access.
  [[nodiscard]] std::optional<http::response> get(const std::string& url, std::int64_t now);

  // Stores if the response is cacheable per its headers. Returns true when
  // stored. Oversized bodies (> shard capacity) are never stored.
  bool put(const std::string& url, const http::response& r, std::int64_t now);

  // Stores with an explicit expiry regardless of cacheability headers (used
  // for processed content whose lifetime the script chooses). Returns true
  // when stored; past expiries and oversized bodies are rejected.
  bool put_with_expiry(const std::string& url, const http::response& r,
                       std::int64_t expires_at, std::int64_t now);

  bool remove(const std::string& url);
  void clear();

  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] cache_stats stats() const;
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t shard_capacity_bytes() const { return shard_capacity_bytes_; }

  // Consistent per-shard view for tests and monitoring: locks each shard in
  // turn and recomputes `charged_bytes` by walking its entries, so accounting
  // drift shows up as charged_bytes != bytes_used.
  struct shard_snapshot {
    std::size_t entries = 0;
    std::size_t lru_length = 0;
    std::size_t bytes_used = 0;
    std::size_t charged_bytes = 0;
  };
  [[nodiscard]] std::vector<shard_snapshot> snapshot_shards() const;

 private:
  struct entry {
    http::response response;
    std::int64_t expires_at = 0;
    std::size_t charged_bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  using entry_map = std::unordered_map<std::string, entry>;

  // Cache-line aligned so neighboring shards' mutexes and counters never
  // false-share.
  struct alignas(64) shard {
    mutable std::mutex mu;
    // Guarded by `mu`.
    entry_map entries;
    std::list<std::string> lru;  // front = most recent
    std::size_t bytes_used = 0;
    // Monotonic; incremented under `mu`, read lock-free by stats().
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> expirations{0};
    std::atomic<std::uint64_t> oversized_rejections{0};
  };

  [[nodiscard]] shard& shard_for(const std::string& url);
  bool put_locked(shard& s, const std::string& url, const http::response& r,
                  std::int64_t expires_at);
  static void touch_locked(shard& s, const std::string& url, entry& e);
  void evict_for_locked(shard& s, std::size_t incoming_bytes);
  static void drop_locked(shard& s, const std::string& url);
  static void drop_locked(shard& s, entry_map::iterator it);

  std::size_t capacity_bytes_;
  std::size_t shard_count_;
  std::size_t shard_capacity_bytes_;  // capacity_bytes_ / shard_count_ (0 = unlimited)
  std::unique_ptr<shard[]> shards_;
};

}  // namespace nakika::cache
