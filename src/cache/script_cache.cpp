#include "cache/script_cache.hpp"

#include <stdexcept>

namespace nakika::cache {

negative_cache::negative_cache(std::int64_t ttl_seconds, std::size_t max_entries)
    : ttl_seconds_(ttl_seconds), max_entries_(max_entries == 0 ? 1 : max_entries) {
  if (ttl_seconds <= 0) {
    throw std::invalid_argument("negative_cache: ttl must be positive");
  }
}

bool negative_cache::contains(const std::string& key, std::int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (it->second <= now) {
    entries_.erase(it);
    return false;
  }
  return true;
}

void negative_cache::insert(const std::string& key, std::int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = now + ttl_seconds_;
    return;
  }
  if (entries_.size() >= max_entries_) {
    detail::evict_nearest_expiry(entries_, [](std::int64_t expiry) { return expiry; });
  }
  entries_.emplace(key, now + ttl_seconds_);
}

bool negative_cache::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(key) > 0;
}

std::size_t negative_cache::purge_expired(std::int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second <= now) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

std::size_t negative_cache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace nakika::cache
