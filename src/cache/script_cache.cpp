#include "cache/script_cache.hpp"

#include <stdexcept>

namespace nakika::cache {

negative_cache::negative_cache(std::int64_t ttl_seconds) : ttl_seconds_(ttl_seconds) {
  if (ttl_seconds <= 0) {
    throw std::invalid_argument("negative_cache: ttl must be positive");
  }
}

bool negative_cache::contains(const std::string& key, std::int64_t now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (it->second <= now) {
    entries_.erase(it);
    return false;
  }
  return true;
}

void negative_cache::insert(const std::string& key, std::int64_t now) {
  entries_[key] = now + ttl_seconds_;
}

bool negative_cache::remove(const std::string& key) { return entries_.erase(key) > 0; }

}  // namespace nakika::cache
