// The baseline: "a regular Apache proxy" (Table 1's Proxy configuration).
// Expiration-based caching, no scripting pipeline, no DHT, no resource
// controls. Every comparison in §5.1 starts here.
#pragma once

#include "cache/http_cache.hpp"
#include "core/cost_model.hpp"
#include "proxy/origin_server.hpp"

namespace nakika::proxy {

class plain_proxy : public http_endpoint {
 public:
  plain_proxy(sim::network& net, sim::node_id host, endpoint_resolver resolve_origin,
              core::cost_model costs = {});

  void handle(const http::request& r, std::function<void(http::response)> done) override;
  [[nodiscard]] sim::node_id host() const override { return host_; }

  [[nodiscard]] cache::http_cache& cache() { return cache_; }
  // By value: the sharded cache aggregates per-shard counters on read.
  [[nodiscard]] cache::cache_stats cache_stats() const { return cache_.stats(); }

 private:
  sim::network& net_;
  sim::node_id host_;
  endpoint_resolver resolve_origin_;
  core::cost_model costs_;
  cache::http_cache cache_;
};

// Shared helper: moves `r` to `target` over the network, lets it handle, and
// returns the response to `from`. Used by proxies for upstream fetches and by
// client drivers.
void forward_request(sim::network& net, sim::node_id from, http_endpoint& target,
                     const http::request& r, std::function<void(http::response)> done);

}  // namespace nakika::proxy
