// A Na Kika edge node (paper Fig. 1): mediates HTTP exchanges through the
// scripting pipeline (client wall → site stages → server wall), caches
// original and processed content, cooperates with other nodes through the
// Coral-like overlay, and enforces congestion-based resource controls with a
// periodic monitor.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/http_cache.hpp"
#include "cache/script_cache.hpp"
#include "core/cost_model.hpp"
#include "core/pages.hpp"
#include "core/pipeline.hpp"
#include "core/resource_manager.hpp"
#include "core/sandbox.hpp"
#include "core/worker_pool.hpp"
#include "net/peer_transport.hpp"
#include "net/single_flight.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "overlay/clusters.hpp"
#include "proxy/origin_server.hpp"
#include "state/local_store.hpp"
#include "state/replication.hpp"
#include "util/stats.hpp"

namespace nakika::proxy {

struct node_config {
  core::pipeline_config pipeline;
  core::cost_model costs;
  core::resource_capacities capacities;
  js::context_limits script_limits;

  // Script execution engine. The bytecode VM is the production path; the
  // tree-walker remains selectable as the reference oracle (differential
  // testing, debugging suspected VM issues).
  js::engine_kind script_engine = js::engine_kind::bytecode;
  // Compiled-chunk cache (content-hash keyed, shared across the node's
  // sandbox pools): entries, not bytes — chunks are small relative to bodies.
  std::size_t chunk_cache_entries = 512;
  // Bound on cached script sources / negative verdicts (ttl_cache).
  std::size_t script_cache_entries = 4096;

  bool resource_controls = true;
  double control_interval = 1.0;  // seconds between CONTROL phase-1 runs
  double control_timeout = 0.5;   // WAIT(TIMEOUT) before phase 2

  // When false the node is "the proxy with an integrated DHT" (Table 1's
  // DHT configuration): no walls, no site scripts, no sandboxes — just
  // caching plus cooperative lookup.
  bool scripting = true;

  bool enable_pages = true;       // Na Kika Pages (.nkp) rendering
  std::int64_t default_script_ttl = 300;

  // Content-cache sizing. Shards spread lock pressure across worker threads;
  // 0 auto-sizes from capacity (see cache::http_cache). Borrowing lets a hot
  // shard use the whole cache instead of thrashing in its 1/N slice.
  std::size_t content_cache_bytes = 256 * 1024 * 1024;
  std::size_t content_cache_shards = 0;
  bool content_cache_borrowing = true;
  // Scan-resistant admission (probation FIFO + ghost readmission, see
  // cache::http_cache): one-hit-wonder floods evict each other instead of
  // the hot set. Off = classic LRU insert-at-head.
  bool cache_admission = true;

  // --- multi-tenant isolation (scenario tier) ---------------------------------
  // Per-tenant (URL host) content-cache quotas: a configured tenant's cached
  // bytes are capped at its quota AND its entries are protected from other
  // tenants' evictions (cache::http_cache::set_tenant_quota).
  std::map<std::string, std::size_t> tenant_cache_quota_bytes;
  // Per-site congestion-control scheduling weights
  // (core::resource_manager::set_site_weight).
  std::map<std::string, double> site_weights;

  // Administrative control scripts; empty = no-op stage. Node administrators
  // may override these to enforce location-specific policy (paper §3.1).
  std::string clientwall_source;
  std::string serverwall_source;

  // What counts as "local" for System.isLocal: CIDRs or domain suffixes.
  std::vector<std::string> local_specs;

  // Per-stage plumbing overhead beyond measured script time (filter chain,
  // bucket-brigade bookkeeping in the paper's Apache implementation).
  // Calibrated so Match-1 capacity lands near the paper's half-of-proxy.
  double stage_overhead = 0.00095;

  std::uint64_t rng_seed = 42;

  // --- telemetry --------------------------------------------------------------
  // Per-request trace spans + per-stage latency histograms (src/obs). The
  // metrics registry itself is always on (it replaces the old stats mutex and
  // costs one relaxed add per event); this flag gates span collection and
  // stage timing, which is what the bench overhead gate compares.
  bool telemetry = true;
  // Worker-mode span sampling: every Nth request per worker gets a full
  // trace (per-stage stamps + a span-ring entry); the rest still land in the
  // end-to-end latency histogram, which reuses the wall-clock elapsed time
  // already measured for billing and so stays exact per request. The sim
  // path (workers = 0) ignores this and traces every request — its clock is
  // the event loop's virtual time, so full fidelity is free and
  // deterministic there. 1 traces everything in worker mode too.
  std::size_t trace_sample_every = 16;
  // Finished spans retained per worker slot (oldest dropped, drops counted).
  std::size_t span_ring_capacity = 256;
  // Log.write lines retained per site per worker slot (oldest dropped,
  // drops counted in telemetry) — bounds the formerly unbounded site_logs.
  std::size_t site_log_capacity = 256;

  // --- multi-worker execution -------------------------------------------------
  // 0 (default): the deterministic single-threaded path driven by the sim
  // event loop — every experiment and fixed-seed run behaves exactly as
  // before. N > 0: the node runs N OS threads, each with a private sandbox
  // pool and RNG, pulling requests from a bounded MPMC queue; handle() then
  // executes pipelines synchronously on worker threads (real wall-clock
  // accounting, no virtual delays) and completion callbacks fire on those
  // threads. Worker mode requires a thread-safe resolve_origin; attach a
  // threaded_peer_transport (deployment does this automatically when the
  // overlay is enabled) for multi-node cooperative caching. Configure
  // walls/content before the first request.
  std::size_t workers = 0;
  // Queue bound; a full queue rejects with 503 "server busy" (the paper's
  // congestion signal applied to admission, counters().rejected counts them).
  std::size_t queue_capacity = 1024;
};

class nakika_node : public http_endpoint, public net::peer_endpoint {
 public:
  nakika_node(sim::network& net, sim::node_id host, endpoint_resolver resolve_origin,
              node_config config = {});
  ~nakika_node() override;

  void handle(const http::request& r, std::function<void(http::response)> done) override;
  [[nodiscard]] sim::node_id host() const override { return host_; }

  // --- multi-worker mode ---
  [[nodiscard]] bool using_workers() const { return pool_ != nullptr; }
  // Blocks until every queued request has completed (worker mode only; no-op
  // for the sim path, where loop.run() plays this role).
  void drain();
  [[nodiscard]] core::worker_pool* pool() { return pool_.get(); }

  // --- cooperative caching ---
  // Attaches the peer transport this node locates and fetches peer copies
  // through: a sim_peer_transport on the deterministic event-loop path, a
  // threaded_peer_transport for worker-mode clusters (deployment picks the
  // right one). The node owns the transport.
  void attach_peer_transport(std::unique_ptr<net::peer_transport> transport);
  // Cache-only lookup used by peers (no origin fallback). Thread-safe: the
  // content cache is sharded and the clock is the node's own epoch, so
  // foreign worker threads may probe while this node is serving.
  [[nodiscard]] std::optional<http::response> lookup_cache_only(const std::string& url);
  // net::peer_endpoint: what a peer transport needs from the remote side.
  [[nodiscard]] std::optional<http::response> peer_cache_lookup(
      const std::string& url) override {
    return lookup_cache_only(url);
  }
  [[nodiscard]] sim::node_id peer_host() const override { return host_; }

  // --- hard state ---
  void attach_replica(const std::string& site, state::replica* r);
  [[nodiscard]] state::local_store& store() { return store_; }

  // --- resource controls ---
  // Starts the periodic monitor (schedules itself on the event loop).
  void start_monitor();
  [[nodiscard]] core::resource_manager& resources() { return resources_; }

  // --- administrative scripts ---
  void set_wall_sources(std::string clientwall, std::string serverwall);

  // --- introspection ---
  // Snapshots merge per-worker accumulators, so they are safe to take while
  // workers are serving (and cheap: a handful of relaxed loads per slot).
  [[nodiscard]] cache::http_cache& content_cache() { return content_cache_; }
  [[nodiscard]] util::run_counters counters() const { return counters_.snapshot(); }
  [[nodiscard]] std::vector<std::string> site_log(const std::string& site) const;
  [[nodiscard]] const node_config& config() const { return config_; }
  [[nodiscard]] std::size_t sandboxes_created() const;

  // Cumulative script-time split across all pipelines: how much real time
  // went into making code runnable (parse + bytecode compile + decision-tree
  // build) vs running it (stage evaluation + handlers), plus cache
  // effectiveness: compiled-chunk cache probes (node-wide, shared across
  // sandbox pools) and VM inline-cache hits/misses (summed over pipelines).
  struct script_time_stats {
    double compile_seconds = 0.0;
    double execute_seconds = 0.0;
    // Snapshotted together from the node-wide chunk cache, so the pair
    // describes one probe population and yields a real hit rate.
    std::uint64_t chunk_cache_hits = 0;
    std::uint64_t chunk_cache_misses = 0;
    std::uint64_t ic_hits = 0;
    std::uint64_t ic_misses = 0;
    // Hit-state split: way-0 hits (monomorphic sites), way-1..3 hits
    // (polymorphic), and lookups at sites that overflowed to megamorphic.
    // mono+poly == ic_hits; mega lookups are neither hits nor misses.
    std::uint64_t ic_mono_hits = 0;
    std::uint64_t ic_poly_hits = 0;
    std::uint64_t ic_mega_lookups = 0;
    // Shape (hidden-class) registry health, summed over runs: transition-tree
    // growth and objects that fell back to dictionary mode (deletes, table
    // overflow).
    std::uint64_t shape_transitions = 0;
    std::uint64_t shape_dict_fallbacks = 0;
    std::uint64_t stages_executed = 0;
  };
  [[nodiscard]] script_time_stats script_times() const;
  // Per-site inline-cache effectiveness (the per-site twin of the aggregate
  // ic_hits/ic_misses above), so a misbehaving or cache-hostile site's
  // scripts are observable in isolation.
  struct site_cache_stats {
    std::uint64_t ic_hits = 0;
    std::uint64_t ic_misses = 0;
    std::uint64_t ic_mono_hits = 0;
    std::uint64_t ic_poly_hits = 0;
    std::uint64_t ic_mega_lookups = 0;
  };
  [[nodiscard]] site_cache_stats site_cache(const std::string& site) const;
  [[nodiscard]] core::chunk_cache& chunks() { return chunk_cache_; }

  // Single-flight effectiveness across both flight tables (top-level misses
  // + script sub-fetches): leaders = upstream fetches executed, waiters =
  // requests that coalesced onto one (== counters().coalesced).
  [[nodiscard]] net::single_flight::stats flight_stats() const {
    const net::single_flight::stats top = flights_.snapshot();
    const net::single_flight::stats sub = sub_flights_.snapshot();
    return {top.leaders + sub.leaders, top.waiters + sub.waiters};
  }
  // Virtual network latency the threaded peer transport accounted (overlay
  // walks + peer round-trips); 0 on the sim path, which bills the event loop
  // instead.
  [[nodiscard]] double peer_latency_seconds() const {
    return static_cast<double>(peer_latency_micros_.load(std::memory_order_relaxed)) * 1e-6;
  }

  // Virtual-epoch clock: event-loop time on the sim path, wall-clock seconds
  // since construction in worker mode. Safe from any thread.
  [[nodiscard]] double virtual_now() const;

  // Span-stamp clock: same epochs as virtual_now, but worker mode reads the
  // calibrated TSC (obs::fast_clock) instead of clock_gettime — spans take
  // several stamps per request, so this is what the <3% overhead gate rides
  // on. Billing and TTL logic keep virtual_now.
  [[nodiscard]] double trace_now() const;

  // --- telemetry ---
  // Merged view of everything above plus per-stage latency histograms and
  // per-tenant breakdowns. Safe to take while workers serve: counters are
  // relaxed loads, span/log slots take only slot-local mutexes.
  [[nodiscard]] obs::telemetry_snapshot telemetry() const;
  [[nodiscard]] std::string telemetry_json() const { return obs::to_json(telemetry()); }
  [[nodiscard]] std::string stats_text() const { return obs::stats_report(telemetry()); }
  // Retained trace spans (slot 0 — the sim/caller thread — first).
  [[nodiscard]] std::vector<obs::span_record> recent_spans() const {
    return spans_.snapshot();
  }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_.dropped(); }
  [[nodiscard]] const obs::metrics_registry& metrics() const { return metrics_; }
  // Summary of one request stage's latency histogram.
  [[nodiscard]] obs::histogram_summary stage_latency(obs::stage s) const {
    return obs::summarize(
        metrics_.histogram_merged(ids_.stage_hist[static_cast<std::size_t>(s)]));
  }

 private:
  struct script_entry {
    std::string source;
    std::uint64_t version = 0;
  };

  core::sandbox* acquire_sandbox(const std::string& site, double& cpu_cost);
  js::gc_cycle_result release_sandbox(const std::string& site, core::sandbox* sb,
                                      bool poisoned);
  // Pool-return reclamation with attribution: runs the sandbox's cycle
  // collection, bills the GC time to `site` through the resource manager
  // (when `record_resources`), and folds the collection into gc counters,
  // the gc_pause histogram, and the per-site accumulators at `slot`. Shared
  // by the sim path (release_sandbox) and the worker path (which returns the
  // sandbox to its worker-private pool afterwards).
  js::gc_cycle_result reclaim_sandbox(const std::string& site, core::sandbox* sb,
                                      bool poisoned, std::size_t slot,
                                      bool record_resources);

  void load_stage_script(const std::string& url,
                         std::function<void(core::stage_fetch_result)> cb);
  // Shared cache discipline for stage scripts (sim + worker paths): probe
  // walls/negative/script/content caches — nullopt means an origin fetch is
  // required — and store a fetched response (or negative verdict) afterwards.
  std::optional<core::stage_fetch_result> probe_stage_script(const std::string& url,
                                                             std::int64_t now);
  core::stage_fetch_result finish_stage_script_fetch(const std::string& url,
                                                     http::response* resp,
                                                     std::int64_t later);
  void fetch_resource(const std::string& site, const http::request& r,
                      std::function<void(http::response, double)> cb,
                      obs::trace_context* trace = nullptr);
  void fetch_from_origin(const http::request& r,
                         std::function<void(http::response, double)> cb);
  http::response maybe_render_nkp(const std::string& site, const http::request& r,
                                  http::response resp, core::worker_context* wc,
                                  obs::trace_context* trace = nullptr);
  core::fetch_result sub_fetch(const http::request& r);
  void monitor_tick(std::size_t kind_index);

  // --- worker-mode request path (synchronous, runs on pool threads) ---
  // The stage loader / resource fetcher / monitor equivalents of the sim
  // path, with origin access through origin_server::serve_now instead of the
  // event loop. Every piece of node state they touch is locked or sharded.
  void execute_on_worker(http::request r, core::worker_context& wc,
                         std::function<void(http::response)> done);
  core::stage_fetch_result load_stage_script_direct(const std::string& url);
  http::response fetch_resource_direct(const std::string& site, const http::request& r,
                                       core::worker_context* wc,
                                       obs::trace_context* trace = nullptr);
  // The miss side of fetch_resource_direct, run under single-flight: peer
  // transport first (when attached), then origin via serve_now.
  http::response fetch_miss_direct(const std::string& site, const http::request& r,
                                   core::worker_context* wc,
                                   obs::trace_context* trace = nullptr);
  core::fetch_result sub_fetch_direct(const http::request& r,
                                      obs::trace_context* trace = nullptr);
  void monitor_main();  // background CONTROL thread (worker mode)
  // Merges one pipeline's outcome into counters/resources/the metrics
  // registry; shared between the sim completion callback and the worker path.
  void account_pipeline(const std::string& site, const core::pipeline_result& result,
                        double elapsed_seconds, std::size_t counter_slot,
                        bool record_resources);
  // Seals a request's trace span: records the total + per-stage histograms at
  // `slot`, bumps outcome counters from the span's flags, pushes it into the
  // span ring. `status` is the response code sent to the client.
  void finish_span(obs::trace_context& trace, std::uint16_t status, double total_seconds,
                   std::size_t slot);
  // The non-sampled fast path: only the end-to-end latency histogram, from
  // the elapsed time the worker measured for billing anyway (no extra clock
  // reads, no span record).
  void record_total_latency(std::size_t slot, double seconds) {
    metrics_.record_seconds(slot, ids_.stage_hist[static_cast<std::size_t>(obs::stage::total)],
                            seconds);
  }
  // Registers the node's counters/histograms (setup-time, before workers).
  void register_metrics();

  sim::network& net_;
  sim::node_id host_;
  endpoint_resolver resolve_origin_;
  node_config config_;

  core::pipeline_executor pipeline_;
  core::resource_manager resources_;
  cache::http_cache content_cache_;
  cache::ttl_cache<script_entry> script_cache_;
  cache::negative_cache no_script_;
  core::chunk_cache chunk_cache_;  // compiled bytecode, shared by all sandboxes
  state::local_store store_;
  std::map<std::string, state::replica*> replicas_;

  // Sandbox pool per site (sim path only; workers own private pools): paper
  // isolates pipelines and reuses contexts.
  core::sandbox_pool sandbox_pool_;

  // Cooperative caching: the transport encapsulates overlay membership and
  // how peer copies travel (virtual-time sim events vs direct cross-thread
  // calls). Null until attached; the miss path then goes straight to origin.
  std::unique_ptr<net::peer_transport> transport_;
  // Single-flight tables for worker-mode misses: concurrent requests for one
  // URL collapse onto one upstream (peer or origin) fetch. Top-level misses
  // and script sub-fetches coalesce separately — a top-level leader renders
  // NKP pages and advertises its copy, a sub-fetch leader must not — so a
  // waiter never receives a response that skipped its path's side effects.
  net::single_flight flights_;
  net::single_flight sub_flights_;
  std::atomic<std::uint64_t> peer_latency_micros_{0};

  // --- telemetry (lock-free hot path; see src/obs) ---
  // Script-time splits, IC effectiveness, stage latency histograms, and
  // outcome counters live in the registry as per-worker slots — one relaxed
  // atomic add per event, merged on read. This replaced the stats mutex that
  // used to serialize every request's accounting (ROADMAP open item 1).
  struct telemetry_ids {
    std::array<obs::metrics_registry::metric_id, obs::stage_count> stage_hist{};
    obs::metrics_registry::metric_id compile_nanos = 0;
    obs::metrics_registry::metric_id execute_nanos = 0;
    obs::metrics_registry::metric_id ic_hits = 0;
    obs::metrics_registry::metric_id ic_misses = 0;
    obs::metrics_registry::metric_id ic_mono_hits = 0;
    obs::metrics_registry::metric_id ic_poly_hits = 0;
    obs::metrics_registry::metric_id ic_mega_lookups = 0;
    obs::metrics_registry::metric_id shape_transitions = 0;
    obs::metrics_registry::metric_id shape_dict_fallbacks = 0;
    obs::metrics_registry::metric_id shapes_live = 0;  // gauge: latest run's table size
    obs::metrics_registry::metric_id stages_executed = 0;
    obs::metrics_registry::metric_id out_cache_hit = 0;
    obs::metrics_registry::metric_id out_cache_miss = 0;
    obs::metrics_registry::metric_id out_peer_hit = 0;
    obs::metrics_registry::metric_id out_origin = 0;
    obs::metrics_registry::metric_id out_coalesced = 0;
    obs::metrics_registry::metric_id out_throttled = 0;
    obs::metrics_registry::metric_id out_terminated = 0;
    obs::metrics_registry::metric_id out_failed = 0;
    obs::metrics_registry::metric_id out_nkp = 0;
    // Cycle collector: cumulative counters plus the pause histogram
    // (individual collection slices/cycles, exported as "gc_pause").
    obs::metrics_registry::metric_id gc_collections = 0;
    obs::metrics_registry::metric_id gc_objects = 0;
    obs::metrics_registry::metric_id gc_bytes = 0;
    obs::metrics_registry::metric_id gc_pause = 0;
  };
  obs::metrics_registry metrics_;
  telemetry_ids ids_;
  obs::span_ring spans_;
  // Per-site accumulators (requests, ICs, bounded Log.write ring): each
  // worker updates its own slot, so workers never serialize against each
  // other — only telemetry readers take the slot locks.
  struct site_obs {
    std::uint64_t requests = 0;
    std::uint64_t ic_hits = 0;
    std::uint64_t ic_misses = 0;
    std::uint64_t ic_mono_hits = 0;
    std::uint64_t ic_poly_hits = 0;
    std::uint64_t ic_mega_lookups = 0;
    std::uint64_t terminated = 0;
    std::uint64_t log_lines_total = 0;
    std::uint64_t log_dropped = 0;
    // GC work this tenant caused: watermark collections inside its runs plus
    // pool-return reclamation of its sandboxes.
    double gc_seconds = 0.0;
    std::uint64_t gc_collections = 0;
    std::deque<std::string> log;  // bounded by config.site_log_capacity
  };
  obs::per_worker_keyed<site_obs> site_obs_;
  // Span-sampling decimation counters, one per worker (see
  // node_config::trace_sample_every). Slot-private single-writer state —
  // only the owning worker ever touches its element — so plain integers.
  struct alignas(64) trace_decim {
    std::uint64_t n = 0;
  };
  std::vector<trace_decim> trace_decim_;
  // Slot 0 = sim/caller thread, slot w+1 = worker w.
  util::sharded_run_counters counters_;
  util::rng rng_;
  std::atomic<std::uint64_t> next_script_version_{1};
  bool monitor_running_ = false;

  // --- worker mode ---
  std::unique_ptr<core::worker_pool> pool_;
  std::thread monitor_thread_;
  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
  std::chrono::steady_clock::time_point start_time_ = std::chrono::steady_clock::now();
  double trace_epoch_ = obs::fast_clock::now_seconds();  // trace_now()'s zero point

  // Memory-pressure model: when script allocation churn exceeds the node's
  // memory capacity (possible only when per-context limits are disabled and
  // the monitor has not intervened), every request slows down — the
  // simulator's stand-in for swap/GC thrashing on a real host. The factor is
  // the overcommit ratio over a sliding window.
  [[nodiscard]] double thrash_factor() const;
  void note_churn(double bytes);
  double churn_window_start_ = 0.0;
  double churn_window_bytes_ = 0.0;
  double churn_rate_ = 0.0;  // bytes/second over the last window
};

}  // namespace nakika::proxy
