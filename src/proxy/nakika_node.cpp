#include "proxy/nakika_node.hpp"

#include "http/wire.hpp"
#include "overlay/redirector.hpp"
#include "proxy/plain_proxy.hpp"
#include "util/logging.hpp"

namespace nakika::proxy {

nakika_node::nakika_node(sim::network& net, sim::node_id host,
                         endpoint_resolver resolve_origin, node_config config)
    : net_(net),
      host_(host),
      resolve_origin_(std::move(resolve_origin)),
      config_(std::move(config)),
      pipeline_(config_.pipeline),
      resources_(config_.capacities),
      content_cache_(config_.content_cache_bytes, config_.content_cache_shards),
      script_cache_(config_.script_cache_entries),
      no_script_(config_.default_script_ttl > 0 ? config_.default_script_ttl : 300,
                 config_.script_cache_entries),
      chunk_cache_(config_.chunk_cache_entries),
      rng_(config_.rng_seed) {}

void nakika_node::set_wall_sources(std::string clientwall, std::string serverwall) {
  config_.clientwall_source = std::move(clientwall);
  config_.serverwall_source = std::move(serverwall);
}

void nakika_node::attach_overlay(overlay::coral_overlay* ov,
                                 overlay::coral_overlay::member_id member,
                                 std::string self_name, peer_resolver peers) {
  overlay_ = ov;
  overlay_member_ = member;
  self_name_ = std::move(self_name);
  peers_ = std::move(peers);
}

void nakika_node::attach_replica(const std::string& site, state::replica* r) {
  replicas_[site] = r;
}

std::optional<http::response> nakika_node::lookup_cache_only(const std::string& url) {
  const auto now = static_cast<std::int64_t>(net_.loop().now());
  return content_cache_.get(url, now);
}

const std::vector<std::string>& nakika_node::site_log(const std::string& site) const {
  static const std::vector<std::string> empty;
  const auto it = site_logs_.find(site);
  return it == site_logs_.end() ? empty : it->second;
}

// ----- sandbox pool -----------------------------------------------------------

core::sandbox* nakika_node::acquire_sandbox(const std::string& site, double& cpu_cost) {
  auto& pool = sandbox_pool_[site];
  if (!pool.empty()) {
    core::sandbox* sb = pool.back().release();
    pool.pop_back();
    cpu_cost += config_.costs.context_reuse;
    return sb;
  }
  ++sandboxes_created_;
  cpu_cost += config_.costs.context_create;
  auto sb = std::make_unique<core::sandbox>(config_.script_limits, config_.script_engine);
  sb->set_chunk_cache(&chunk_cache_);
  return sb.release();
}

void nakika_node::release_sandbox(const std::string& site, core::sandbox* sb,
                                  bool poisoned) {
  std::unique_ptr<core::sandbox> owned(sb);
  if (poisoned) return;  // a killed/corrupted context is discarded, not reused
  sandbox_pool_[site].push_back(std::move(owned));
}

// ----- stage script loading ------------------------------------------------------

void nakika_node::load_stage_script(const std::string& url,
                                    std::function<void(core::stage_fetch_result)> cb) {
  core::stage_fetch_result out;

  // Administrative walls come from node configuration (the paper fetches
  // them from nakika.net and caches; administrators may override locally).
  if (url == config_.pipeline.clientwall_url) {
    out.found = !config_.clientwall_source.empty();
    out.source = config_.clientwall_source;
    out.version = 1;
    cb(std::move(out));
    return;
  }
  if (url == config_.pipeline.serverwall_url) {
    out.found = !config_.serverwall_source.empty();
    out.source = config_.serverwall_source;
    out.version = 1;
    cb(std::move(out));
    return;
  }

  const auto now = static_cast<std::int64_t>(net_.loop().now());
  if (no_script_.contains(url, now)) {
    cb(std::move(out));  // cached "no such script"
    return;
  }
  if (auto cached = script_cache_.get(url, now)) {
    out.found = true;
    out.source = std::move(cached->source);
    out.version = cached->version;
    cb(std::move(out));
    return;
  }
  // Scripts are ordinary HTTP resources subject to ordinary caching (§3.1);
  // dynamically generated stage code (e.g. the blacklist extension) lands in
  // the content cache via the Cache vocabulary and is loadable from there.
  if (auto content = content_cache_.get(url, now)) {
    if (content->ok() && content->body) {
      out.found = true;
      out.source = content->body->str();
      // Content-hash versioning: identical generated code reuses the
      // compiled stage; regenerated code reloads.
      out.version = std::hash<std::string>{}(out.source) | 1;
      cb(std::move(out));
      return;
    }
  }

  http::request script_request;
  try {
    script_request.url = http::url::parse(url);
  } catch (const std::invalid_argument&) {
    no_script_.insert(url, now);
    cb(std::move(out));
    return;
  }
  script_request.client_ip = "0.0.0.0";

  http_endpoint* origin = resolve_origin_(script_request.url.host());
  if (origin == nullptr) {
    no_script_.insert(url, now);
    cb(std::move(out));
    return;
  }
  forward_request(net_, host_, *origin, script_request,
                  [this, url, cb = std::move(cb)](http::response resp) mutable {
                    core::stage_fetch_result out;
                    const auto later = static_cast<std::int64_t>(net_.loop().now());
                    if (!resp.ok() || !resp.body) {
                      no_script_.insert(url, later);
                      cb(std::move(out));
                      return;
                    }
                    script_entry entry;
                    entry.source = resp.body->str();
                    entry.version = next_script_version_++;
                    const http::freshness f = http::compute_freshness(resp, later);
                    const std::int64_t expiry =
                        f.cacheable ? f.expires_at : later + config_.default_script_ttl;
                    script_cache_.put(url, entry, expiry);
                    out.found = true;
                    out.source = std::move(entry.source);
                    out.version = entry.version;
                    cb(std::move(out));
                  });
}

// ----- resource fetching -----------------------------------------------------------

http::response nakika_node::maybe_render_nkp(const std::string& site, const http::request& r,
                                             http::response resp) {
  if (!config_.enable_pages || !resp.ok() || !resp.body) return resp;
  const std::string content_type = resp.headers.get_or("Content-Type", "");
  if (!core::is_nkp_resource(r.url.path(), content_type)) return resp;

  // Compile the page into a one-policy script and run its onResponse in the
  // site's sandbox (the paper layers NKP on the event model the same way).
  std::string script;
  try {
    script = core::compile_nkp(resp.body->str());
  } catch (const std::invalid_argument& e) {
    return http::make_error_response(500, std::string("nkp: ") + e.what());
  }

  double cpu = 0.0;
  core::sandbox* sb = acquire_sandbox(site, cpu);
  bool poisoned = false;
  http::response rendered = std::move(resp);
  try {
    sb->begin_run();
    const core::sandbox::loaded_stage& stage =
        sb->load_stage(r.url.str() + "#nkp", script, next_script_version_++);
    const core::match_result match = stage.tree->match(r);
    if (match.found() && match.matched->has_on_response()) {
      core::exec_state exec;
      exec.site = site;
      exec.now = static_cast<std::int64_t>(net_.loop().now());
      exec.request = const_cast<http::request*>(&r);
      exec.response = &rendered;
      exec.store = &store_;
      exec.http_cache = &content_cache_;
      sb->binding()->current = &exec;
      core::sync_request_to_script(sb->ctx(), r);
      core::sync_response_to_script(sb->ctx(), rendered);
      js::interpreter in(sb->ctx());
      in.call(match.matched->on_response, js::value::undefined(), {});
      core::read_back_response(sb->ctx(), exec, rendered);
      sb->binding()->current = nullptr;
    }
  } catch (const js::script_error& e) {
    poisoned = true;
    rendered = http::make_error_response(500, std::string("nkp script: ") + e.what());
  } catch (const core::request_terminated_signal&) {
    sb->binding()->current = nullptr;
  }
  release_sandbox(site, sb, poisoned);
  return rendered;
}

void nakika_node::fetch_from_origin(const http::request& r,
                                    std::function<void(http::response, double)> cb) {
  http_endpoint* origin = resolve_origin_(r.url.host());
  if (origin == nullptr) {
    cb(http::make_error_response(502, "cannot resolve " + r.url.host()), 0.0);
    return;
  }
  forward_request(net_, host_, *origin, r,
                  [cb = std::move(cb)](http::response resp) mutable {
                    cb(std::move(resp), 0.0);
                  });
}

void nakika_node::fetch_resource(const std::string& site, const http::request& r,
                                 std::function<void(http::response, double)> cb) {
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    cb(std::move(*hit), config_.costs.cache_hit_serve);
    return;
  }

  auto finish_with = [this, site, r, key, cb](http::response resp) mutable {
    resp = maybe_render_nkp(site, r, std::move(resp));
    const auto later = static_cast<std::int64_t>(net_.loop().now());
    const bool stored = content_cache_.put(key, resp, later);
    if (stored && overlay_ != nullptr) {
      // Advertise our copy: "one cached copy ... is sufficient for avoiding
      // origin server accesses".
      const http::freshness f = http::compute_freshness(resp, later);
      overlay_->put(overlay_member_, key, self_name_, f.expires_at, []() {});
    }
    cb(std::move(resp), 0.0);
  };

  // The overlay is only worth consulting for content that peers could have
  // cached; query-bearing URLs are dynamic/personalized and go straight to
  // the origin (as CoralCDN does for uncacheable content).
  const bool overlay_worthwhile = r.url.query().empty();
  if (overlay_ != nullptr && peers_ && overlay_worthwhile) {
    overlay_->get(overlay_member_, key,
                  [this, r, finish_with, cb](std::vector<std::string> holders,
                                             int /*level*/) mutable {
                    nakika_node* peer = nullptr;
                    for (const auto& name : holders) {
                      if (name == self_name_) continue;
                      if (nakika_node* p = peers_(name)) {
                        peer = p;
                        break;
                      }
                    }
                    if (peer == nullptr) {
                      fetch_from_origin(r, [finish_with](http::response resp, double) mutable {
                        finish_with(std::move(resp));
                      });
                      return;
                    }
                    // Ask the peer's cache; fall back to origin on a miss.
                    const std::string key = r.url.str();
                    net_.transfer(
                        host_, peer->host(), http::wire_size(r),
                        [this, peer, key, r, finish_with]() mutable {
                          auto hit = peer->lookup_cache_only(key);
                          if (!hit) {
                            // Miss at the peer (stale hint): back to origin.
                            net_.transfer(peer->host(), host_, 64, [this, r,
                                                                    finish_with]() mutable {
                              fetch_from_origin(
                                  r, [finish_with](http::response resp, double) mutable {
                                    finish_with(std::move(resp));
                                  });
                            });
                            return;
                          }
                          const std::size_t bytes = http::wire_size(*hit);
                          net_.run_cpu(
                              peer->host(), config_.costs.cache_hit_serve,
                              [this, peer, bytes, resp = std::move(*hit),
                               finish_with]() mutable {
                                net_.transfer(peer->host(), host_, bytes,
                                              [resp = std::move(resp),
                                               finish_with]() mutable {
                                                finish_with(std::move(resp));
                                              });
                              });
                        });
                  });
    return;
  }

  fetch_from_origin(r, [finish_with](http::response resp, double) mutable {
    finish_with(std::move(resp));
  });
}

// ----- script subrequests (Fetch vocabulary) ----------------------------------------

core::fetch_result nakika_node::sub_fetch(const http::request& r) {
  core::fetch_result out;
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    out.ok = true;
    out.response = std::move(*hit);
    out.virtual_delay_seconds = config_.costs.cache_hit_serve;
    return out;
  }
  // Synchronous origin read with an accounted round-trip delay: scripts see
  // blocking semantics (per-script user-level threads in the paper) while
  // the simulator bills the time to the pipeline's completion.
  http_endpoint* origin = resolve_origin_(r.url.host());
  auto* concrete = dynamic_cast<origin_server*>(origin);
  if (concrete == nullptr) {
    return out;  // unreachable or not a direct origin
  }
  double cpu = 0.0;
  auto resp = concrete->serve_now(r, &cpu);
  if (!resp) return out;
  const double rtt = net_.has_route(host_, concrete->host())
                         ? 2.0 * net_.route_latency(host_, concrete->host())
                         : 0.0;
  const double transfer_time =
      static_cast<double>(http::wire_size(*resp)) / 12.5e6;  // nominal LAN rate
  out.ok = true;
  out.response = std::move(*resp);
  out.virtual_delay_seconds = rtt + cpu + transfer_time;
  const auto later = static_cast<std::int64_t>(net_.loop().now());
  content_cache_.put(key, out.response, later);
  return out;
}

// ----- request handling ---------------------------------------------------------------

void nakika_node::handle(const http::request& original,
                         std::function<void(http::response)> done) {
  ++counters_.offered;

  http::request r = original;
  if (overlay::is_nakika_host(r.url.host())) {
    r.url.set_host(overlay::from_nakika_host(r.url.host()));
  }
  const std::string site = r.url.site();

  if (config_.resource_controls && !resources_.admit(site, rng_, net_.loop().now())) {
    // Throttled rejection is a shared-memory flag check in the paper's
    // implementation — far cheaper than full request processing.
    ++counters_.throttled;
    net_.run_cpu(host_, 0.0001, [done = std::move(done)]() mutable {
      done(http::make_error_response(503, "server busy (throttled)"));
    });
    return;
  }

  if (!config_.scripting) {
    // DHT-only mode: cache + cooperative lookup, no scripting pipeline.
    net_.run_cpu(host_, config_.costs.proxy_overhead,
                 [this, site, r, done = std::move(done)]() mutable {
                   fetch_resource(site, r, [this, done = std::move(done)](
                                               http::response resp, double cpu) mutable {
                     ++counters_.completed;
                     net_.run_cpu(host_, cpu + config_.costs.dht_processing,
                                  [done = std::move(done), resp = std::move(resp)]() mutable {
                                    done(std::move(resp));
                                  });
                   });
                 });
    return;
  }

  double setup_cpu = config_.costs.proxy_overhead;
  core::sandbox* sb = acquire_sandbox(site, setup_cpu);
  resources_.pipeline_started(site, sb->kill_flag());

  core::exec_state base;
  base.site = site;
  base.local_specs = config_.local_specs;
  base.now = static_cast<std::int64_t>(net_.loop().now());
  base.http_cache = &content_cache_;
  base.store = &store_;
  const auto rep = replicas_.find(site);
  base.replica = rep == replicas_.end() ? nullptr : rep->second;
  base.fetch = [this](const http::request& sub) { return sub_fetch(sub); };
  base.resources = resources_.view_for(site);

  const std::string site_script_url = site + "/nakika.js";
  const double start_time = net_.loop().now();

  pipeline_.execute(
      std::move(r), *sb, site_script_url,
      [this](const std::string& url, std::function<void(core::stage_fetch_result)> cb) {
        load_stage_script(url, std::move(cb));
      },
      [this, site](const http::request& req,
                   std::function<void(http::response, double)> cb) {
        fetch_resource(site, req, std::move(cb));
      },
      std::move(base),
      [this, site, sb, setup_cpu, start_time,
       done = std::move(done)](core::pipeline_result result) mutable {
        resources_.pipeline_finished(site, sb->kill_flag());
        const bool poisoned = result.terminated || result.failed;
        release_sandbox(site, sb, poisoned);

        const double elapsed = net_.loop().now() - start_time;
        const double response_bytes = static_cast<double>(result.response.body_size());
        resources_.record(site, core::resource_kind::cpu, result.script_cpu_seconds);
        resources_.record(site, core::resource_kind::memory,
                          static_cast<double>(result.heap_bytes));
        resources_.record(site, core::resource_kind::bandwidth,
                          static_cast<double>(result.bytes_read + result.bytes_written) +
                              response_bytes);
        resources_.record(site, core::resource_kind::running_time,
                          elapsed + result.script_cpu_seconds);
        resources_.record(site, core::resource_kind::total_bytes,
                          static_cast<double>(result.bytes_read + result.bytes_written) +
                              response_bytes);

        script_times_.compile_seconds += result.script_compile_seconds;
        script_times_.execute_seconds += result.script_execute_seconds;
        script_times_.chunk_cache_hits += static_cast<std::uint64_t>(result.chunk_cache_hits);
        script_times_.stages_executed += static_cast<std::uint64_t>(result.stages_executed);

        if (result.terminated) {
          ++counters_.terminated;
        } else if (result.failed) {
          ++counters_.failed;
        } else {
          ++counters_.completed;
        }
        if (!result.log_lines.empty()) {
          auto& log = site_logs_[site];
          log.insert(log.end(), result.log_lines.begin(), result.log_lines.end());
        }

        note_churn(static_cast<double>(result.heap_bytes));
        const double cpu = (setup_cpu + result.script_cpu_seconds +
                            config_.stage_overhead * result.stages_executed) *
                           thrash_factor();
        const double extra_delay = result.virtual_delay_seconds;
        net_.run_cpu(host_, cpu, [this, extra_delay, done = std::move(done),
                                  resp = std::move(result.response)]() mutable {
          if (extra_delay > 0) {
            net_.loop().schedule(extra_delay,
                                 [done = std::move(done), resp = std::move(resp)]() mutable {
                                   done(std::move(resp));
                                 });
          } else {
            done(std::move(resp));
          }
        });
      });
}

// ----- memory-pressure model ---------------------------------------------------------

void nakika_node::note_churn(double bytes) {
  const double now = net_.loop().now();
  constexpr double window = 0.25;  // seconds
  if (now - churn_window_start_ >= window) {
    churn_rate_ = churn_window_bytes_ / std::max(window, now - churn_window_start_);
    churn_window_start_ = now;
    churn_window_bytes_ = 0.0;
  }
  churn_window_bytes_ += bytes;
}

double nakika_node::thrash_factor() const {
  const double capacity = config_.capacities.memory_bytes_per_second;
  if (capacity <= 0 || churn_rate_ <= capacity) return 1.0;
  return std::min(churn_rate_ / capacity, 64.0);
}

// ----- resource-control monitor ----------------------------------------------------

void nakika_node::start_monitor() {
  if (monitor_running_ || !config_.resource_controls) return;
  monitor_running_ = true;
  monitor_tick(0);
}

void nakika_node::monitor_tick(std::size_t /*kind_index*/) {
  // CONTROL runs for every tracked resource each cycle: phase 1, wait the
  // control timeout ("note that our implementation does not block but
  // rather polls"), then phase 2.
  net_.loop().schedule(config_.control_interval, [this]() {
    // Housekeeping alongside the resource sweep: drop expired script sources
    // and negative verdicts so they don't sit resident until capacity
    // eviction happens to pick them.
    const auto now = static_cast<std::int64_t>(net_.loop().now());
    script_cache_.purge_expired(now);
    no_script_.purge_expired(now);
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      resources_.control_phase1(static_cast<core::resource_kind>(k), net_.loop().now());
    }
    net_.loop().schedule(config_.control_timeout, [this]() {
      for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
        const core::control_outcome outcome = resources_.control_phase2(
            static_cast<core::resource_kind>(k), net_.loop().now());
        if (!outcome.terminated_site.empty()) {
          NAKIKA_LOG(info, "monitor")
              << "terminated pipelines of " << outcome.terminated_site;
        }
      }
      monitor_tick(0);
    });
  });
}

}  // namespace nakika::proxy
