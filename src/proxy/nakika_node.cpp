#include "proxy/nakika_node.hpp"

#include <stdexcept>

#include "http/wire.hpp"
#include "overlay/redirector.hpp"
#include "proxy/plain_proxy.hpp"
#include "util/logging.hpp"

namespace nakika::proxy {

using counter_field = util::sharded_run_counters::field;

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

nakika_node::nakika_node(sim::network& net, sim::node_id host,
                         endpoint_resolver resolve_origin, node_config config)
    : net_(net),
      host_(host),
      resolve_origin_(std::move(resolve_origin)),
      config_(std::move(config)),
      pipeline_(config_.pipeline),
      resources_(config_.capacities),
      content_cache_(config_.content_cache_bytes, config_.content_cache_shards,
                     config_.content_cache_borrowing),
      script_cache_(config_.script_cache_entries),
      no_script_(config_.default_script_ttl > 0 ? config_.default_script_ttl : 300,
                 config_.script_cache_entries),
      chunk_cache_(config_.chunk_cache_entries),
      counters_(config_.workers + 1),
      rng_(config_.rng_seed) {
  // Tenant isolation wiring (setup-time: before any request is served).
  for (const auto& [tenant, quota] : config_.tenant_cache_quota_bytes) {
    content_cache_.set_tenant_quota(tenant, quota);
  }
  for (const auto& [site, weight] : config_.site_weights) {
    resources_.set_site_weight(site, weight);
  }
  if (config_.workers > 0) {
    core::worker_pool_config wp;
    wp.workers = config_.workers;
    wp.queue_capacity = config_.queue_capacity;
    // Offset so worker admission draws differ from the sim-path stream.
    wp.rng_seed = config_.rng_seed + 0x9e3779b97f4a7c15ULL;
    pool_ = std::make_unique<core::worker_pool>(wp);
  }
}

nakika_node::~nakika_node() {
  if (pool_ != nullptr) pool_->stop();
  if (monitor_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(monitor_mu_);
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    monitor_thread_.join();
  }
}

void nakika_node::drain() {
  if (pool_ != nullptr) pool_->drain();
}

double nakika_node::virtual_now() const {
  if (pool_ != nullptr) return seconds_since(start_time_);
  return net_.loop().now();
}

void nakika_node::set_wall_sources(std::string clientwall, std::string serverwall) {
  config_.clientwall_source = std::move(clientwall);
  config_.serverwall_source = std::move(serverwall);
}

void nakika_node::attach_peer_transport(std::unique_ptr<net::peer_transport> transport) {
  transport_ = std::move(transport);
}

void nakika_node::attach_replica(const std::string& site, state::replica* r) {
  replicas_[site] = r;
}

std::optional<http::response> nakika_node::lookup_cache_only(const std::string& url) {
  // virtual_now (not the raw loop clock) so the probe is safe and fresh when
  // a foreign node's worker thread calls in while we serve in worker mode.
  const auto now = static_cast<std::int64_t>(virtual_now());
  return content_cache_.get(url, now);
}

std::vector<std::string> nakika_node::site_log(const std::string& site) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const auto it = site_logs_.find(site);
  return it == site_logs_.end() ? std::vector<std::string>{} : it->second;
}

nakika_node::script_time_stats nakika_node::script_times() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  script_time_stats out = script_times_;
  // Chunk-cache probes are counted by the (node-wide, thread-safe) cache
  // itself; snapshot BOTH sides from it so hits and misses describe the same
  // probe population (pipeline stage loads + nkp renders alike) and
  // hits/(hits+misses) is a real hit rate.
  out.chunk_cache_hits = chunk_cache_.hits();
  out.chunk_cache_misses = chunk_cache_.misses();
  return out;
}

nakika_node::site_cache_stats nakika_node::site_cache(const std::string& site) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const auto it = site_cache_.find(site);
  return it == site_cache_.end() ? site_cache_stats{} : it->second;
}

std::size_t nakika_node::sandboxes_created() const {
  return sandbox_pool_.created() + (pool_ != nullptr ? pool_->sandboxes_created() : 0);
}

// ----- sandbox pool -----------------------------------------------------------

core::sandbox* nakika_node::acquire_sandbox(const std::string& site, double& cpu_cost) {
  bool created = false;
  core::sandbox* sb = sandbox_pool_.acquire(site, config_.script_limits,
                                            config_.script_engine, &chunk_cache_, &created);
  cpu_cost += created ? config_.costs.context_create : config_.costs.context_reuse;
  return sb;
}

void nakika_node::release_sandbox(const std::string& site, core::sandbox* sb,
                                  bool poisoned) {
  sandbox_pool_.release(site, sb, poisoned);
}

// ----- stage script loading ------------------------------------------------------

std::optional<core::stage_fetch_result> nakika_node::probe_stage_script(
    const std::string& url, std::int64_t now) {
  core::stage_fetch_result out;

  // Administrative walls come from node configuration (the paper fetches
  // them from nakika.net and caches; administrators may override locally).
  if (url == config_.pipeline.clientwall_url) {
    out.found = !config_.clientwall_source.empty();
    out.source = config_.clientwall_source;
    out.version = 1;
    return out;
  }
  if (url == config_.pipeline.serverwall_url) {
    out.found = !config_.serverwall_source.empty();
    out.source = config_.serverwall_source;
    out.version = 1;
    return out;
  }

  if (no_script_.contains(url, now)) return out;  // cached "no such script"
  if (auto cached = script_cache_.get(url, now)) {
    out.found = true;
    out.source = std::move(cached->source);
    out.version = cached->version;
    return out;
  }
  // Scripts are ordinary HTTP resources subject to ordinary caching (§3.1);
  // dynamically generated stage code (e.g. the blacklist extension) lands in
  // the content cache via the Cache vocabulary and is loadable from there.
  if (auto content = content_cache_.get(url, now)) {
    if (content->ok() && content->body) {
      out.found = true;
      out.source = content->body->str();
      // Content-hash versioning: identical generated code reuses the
      // compiled stage; regenerated code reloads.
      out.version = std::hash<std::string>{}(out.source) | 1;
      return out;
    }
  }
  return std::nullopt;  // needs an origin fetch
}

core::stage_fetch_result nakika_node::finish_stage_script_fetch(const std::string& url,
                                                                http::response* resp,
                                                                std::int64_t later) {
  core::stage_fetch_result out;
  if (resp == nullptr || !resp->ok() || !resp->body) {
    no_script_.insert(url, later);
    return out;
  }
  script_entry entry;
  entry.source = resp->body->str();
  entry.version = next_script_version_.fetch_add(1, std::memory_order_relaxed);
  const http::freshness f = http::compute_freshness(*resp, later);
  const std::int64_t expiry =
      f.cacheable ? f.expires_at : later + config_.default_script_ttl;
  script_cache_.put(url, entry, expiry);
  out.found = true;
  out.source = std::move(entry.source);
  out.version = entry.version;
  return out;
}

void nakika_node::load_stage_script(const std::string& url,
                                    std::function<void(core::stage_fetch_result)> cb) {
  const auto now = static_cast<std::int64_t>(net_.loop().now());
  if (auto probed = probe_stage_script(url, now)) {
    cb(std::move(*probed));
    return;
  }

  http::request script_request;
  try {
    script_request.url = http::url::parse(url);
  } catch (const std::invalid_argument&) {
    no_script_.insert(url, now);
    cb(core::stage_fetch_result{});
    return;
  }
  script_request.client_ip = "0.0.0.0";

  http_endpoint* origin = resolve_origin_(script_request.url.host());
  if (origin == nullptr) {
    no_script_.insert(url, now);
    cb(core::stage_fetch_result{});
    return;
  }
  forward_request(net_, host_, *origin, script_request,
                  [this, url, cb = std::move(cb)](http::response resp) mutable {
                    const auto later = static_cast<std::int64_t>(net_.loop().now());
                    cb(finish_stage_script_fetch(url, &resp, later));
                  });
}

// Synchronous twin of load_stage_script for the worker path: identical cache
// discipline (shared helpers above), but origin access goes through
// origin_server::serve_now instead of the (single-threaded) event loop.
core::stage_fetch_result nakika_node::load_stage_script_direct(const std::string& url) {
  const auto now = static_cast<std::int64_t>(virtual_now());
  if (auto probed = probe_stage_script(url, now)) return std::move(*probed);

  http::request script_request;
  try {
    script_request.url = http::url::parse(url);
  } catch (const std::invalid_argument&) {
    no_script_.insert(url, now);
    return core::stage_fetch_result{};
  }
  script_request.client_ip = "0.0.0.0";

  auto* origin = dynamic_cast<origin_server*>(resolve_origin_(script_request.url.host()));
  if (origin == nullptr) {
    no_script_.insert(url, now);
    return core::stage_fetch_result{};
  }
  auto resp = origin->serve_now(script_request);
  const auto later = static_cast<std::int64_t>(virtual_now());
  return finish_stage_script_fetch(url, resp ? &*resp : nullptr, later);
}

// ----- resource fetching -----------------------------------------------------------

http::response nakika_node::maybe_render_nkp(const std::string& site, const http::request& r,
                                             http::response resp, core::worker_context* wc) {
  if (!config_.enable_pages || !resp.ok() || !resp.body) return resp;
  const std::string content_type = resp.headers.get_or("Content-Type", "");
  if (!core::is_nkp_resource(r.url.path(), content_type)) return resp;

  // Compile the page into a one-policy script and run its onResponse in the
  // site's sandbox (the paper layers NKP on the event model the same way).
  std::string script;
  try {
    script = core::compile_nkp(resp.body->str());
  } catch (const std::invalid_argument& e) {
    return http::make_error_response(500, std::string("nkp: ") + e.what());
  }

  double cpu = 0.0;
  core::sandbox* sb = nullptr;
  if (wc != nullptr) {
    bool created = false;
    sb = wc->acquire(site, config_.script_limits, config_.script_engine, &chunk_cache_,
                     &created);
  } else {
    sb = acquire_sandbox(site, cpu);
  }
  bool poisoned = false;
  http::response rendered = std::move(resp);
  try {
    sb->begin_run();
    // The version bump forces a reload per render, so a compiled matcher
    // could never be reused — keep the tree walk for this one-shot stage.
    const core::sandbox::loaded_stage& stage = sb->load_stage(
        r.url.str() + "#nkp", script,
        next_script_version_.fetch_add(1, std::memory_order_relaxed),
        /*stats=*/nullptr, /*compile_matcher=*/false);
    const core::match_result match = sb->match_stage(stage, r);
    if (match.found() && match.matched->has_on_response()) {
      core::exec_state exec;
      exec.site = site;
      exec.now = static_cast<std::int64_t>(virtual_now());
      exec.request = const_cast<http::request*>(&r);
      exec.response = &rendered;
      exec.store = &store_;
      exec.http_cache = &content_cache_;
      sb->binding()->current = &exec;
      core::sync_request_to_script(sb->ctx(), r);
      core::sync_response_to_script(sb->ctx(), rendered);
      js::interpreter in(sb->ctx());
      in.call(match.matched->on_response, js::value::undefined(), {});
      core::read_back_response(sb->ctx(), exec, rendered);
      sb->binding()->current = nullptr;
    }
  } catch (const js::script_error& e) {
    poisoned = true;
    rendered = http::make_error_response(500, std::string("nkp script: ") + e.what());
  } catch (const core::request_terminated_signal&) {
    sb->binding()->current = nullptr;
  }
  if (wc != nullptr) {
    wc->release(site, sb, poisoned);
  } else {
    release_sandbox(site, sb, poisoned);
  }
  return rendered;
}

void nakika_node::fetch_from_origin(const http::request& r,
                                    std::function<void(http::response, double)> cb) {
  http_endpoint* origin = resolve_origin_(r.url.host());
  if (origin == nullptr) {
    cb(http::make_error_response(502, "cannot resolve " + r.url.host()), 0.0);
    return;
  }
  forward_request(net_, host_, *origin, r,
                  [cb = std::move(cb)](http::response resp) mutable {
                    cb(std::move(resp), 0.0);
                  });
}

void nakika_node::fetch_resource(const std::string& site, const http::request& r,
                                 std::function<void(http::response, double)> cb) {
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    cb(std::move(*hit), config_.costs.cache_hit_serve);
    return;
  }

  auto finish_with = [this, site, r, key, cb](http::response resp) mutable {
    resp = maybe_render_nkp(site, r, std::move(resp), nullptr);
    const auto later = static_cast<std::int64_t>(net_.loop().now());
    const bool stored = content_cache_.put(key, resp, later);
    if (stored && transport_ != nullptr) {
      // Advertise our copy: "one cached copy ... is sufficient for avoiding
      // origin server accesses".
      const http::freshness f = http::compute_freshness(resp, later);
      transport_->advertise(key, f.expires_at);
    }
    cb(std::move(resp), 0.0);
  };

  // The overlay is only worth consulting for content that peers could have
  // cached; query-bearing URLs are dynamic/personalized and go straight to
  // the origin (as CoralCDN does for uncacheable content).
  const bool overlay_worthwhile = r.url.query().empty();
  if (transport_ != nullptr && overlay_worthwhile) {
    transport_->fetch_from_peers(
        r, [this, r, finish_with](net::peer_transport::result res) mutable {
          if (res.response) {
            counters_.add(0, counter_field::peer_hits);
            finish_with(std::move(*res.response));
            return;
          }
          counters_.add(0, counter_field::peer_misses);
          fetch_from_origin(r, [finish_with](http::response resp, double) mutable {
            finish_with(std::move(resp));
          });
        });
    return;
  }

  fetch_from_origin(r, [finish_with](http::response resp, double) mutable {
    finish_with(std::move(resp));
  });
}

// Synchronous twin of fetch_resource for the worker path: cache, then the
// single-flight miss path (peer transport, then origin via serve_now). No
// virtual-delay sleeping — workers burn real time; the transport's virtual
// network cost is accounted in peer_latency_seconds instead.
http::response nakika_node::fetch_resource_direct(const std::string& site,
                                                  const http::request& r,
                                                  core::worker_context* wc) {
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(virtual_now());

  if (auto hit = content_cache_.get(key, now)) return std::move(*hit);

  // Query-bearing URLs are dynamic/personalized: each request must reach the
  // origin itself, so they bypass coalescing (same rule as the overlay).
  if (!r.url.query().empty()) return fetch_miss_direct(site, r, wc);

  bool coalesced = false;
  http::response out = flights_.run(
      key, [&] { return fetch_miss_direct(site, r, wc); }, &coalesced);
  if (coalesced) {
    const std::size_t slot = wc != nullptr ? wc->index() + 1 : 0;
    counters_.add(slot, counter_field::coalesced);
  }
  return out;
}

http::response nakika_node::fetch_miss_direct(const std::string& site,
                                              const http::request& r,
                                              core::worker_context* wc) {
  const std::string key = r.url.str();
  const std::size_t slot = wc != nullptr ? wc->index() + 1 : 0;

  // A flight that completed between our miss and taking leadership may have
  // filled the cache already; serve that instead of refetching.
  if (auto hit = content_cache_.get(key, static_cast<std::int64_t>(virtual_now()))) {
    return std::move(*hit);
  }

  auto finish_with = [&](http::response resp) {
    resp = maybe_render_nkp(site, r, std::move(resp), wc);
    const auto later = static_cast<std::int64_t>(virtual_now());
    const bool stored = content_cache_.put(key, resp, later);
    if (stored && transport_ != nullptr) {
      const http::freshness f = http::compute_freshness(resp, later);
      transport_->advertise(key, f.expires_at);
    }
    return resp;
  };

  if (transport_ != nullptr && r.url.query().empty()) {
    net::peer_transport::result res;
    transport_->fetch_from_peers(
        r, [&res](net::peer_transport::result found) { res = std::move(found); });
    peer_latency_micros_.fetch_add(static_cast<std::uint64_t>(res.latency_seconds * 1e6),
                                   std::memory_order_relaxed);
    if (res.response) {
      counters_.add(slot, counter_field::peer_hits);
      return finish_with(std::move(*res.response));
    }
    counters_.add(slot, counter_field::peer_misses);
  }

  auto* origin = dynamic_cast<origin_server*>(resolve_origin_(r.url.host()));
  if (origin == nullptr) {
    return http::make_error_response(502, "cannot resolve " + r.url.host());
  }
  auto resp = origin->serve_now(r);
  if (!resp) {
    return http::make_error_response(502, "origin failure for " + key);
  }
  return finish_with(std::move(*resp));
}

// ----- script subrequests (Fetch vocabulary) ----------------------------------------

core::fetch_result nakika_node::sub_fetch(const http::request& r) {
  core::fetch_result out;
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    out.ok = true;
    out.response = std::move(*hit);
    out.virtual_delay_seconds = config_.costs.cache_hit_serve;
    return out;
  }
  // Synchronous origin read with an accounted round-trip delay: scripts see
  // blocking semantics (per-script user-level threads in the paper) while
  // the simulator bills the time to the pipeline's completion.
  http_endpoint* origin = resolve_origin_(r.url.host());
  auto* concrete = dynamic_cast<origin_server*>(origin);
  if (concrete == nullptr) {
    return out;  // unreachable or not a direct origin
  }
  double cpu = 0.0;
  auto resp = concrete->serve_now(r, &cpu);
  if (!resp) return out;
  const double rtt = net_.has_route(host_, concrete->host())
                         ? 2.0 * net_.route_latency(host_, concrete->host())
                         : 0.0;
  const double transfer_time =
      static_cast<double>(http::wire_size(*resp)) / 12.5e6;  // nominal LAN rate
  out.ok = true;
  out.response = std::move(*resp);
  out.virtual_delay_seconds = rtt + cpu + transfer_time;
  const auto later = static_cast<std::int64_t>(net_.loop().now());
  content_cache_.put(key, out.response, later);
  return out;
}

core::fetch_result nakika_node::sub_fetch_direct(const http::request& r) {
  core::fetch_result out;
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(virtual_now());

  if (auto hit = content_cache_.get(key, now)) {
    out.ok = true;
    out.response = std::move(*hit);
    return out;
  }
  auto* concrete = dynamic_cast<origin_server*>(resolve_origin_(r.url.host()));
  if (concrete == nullptr) return out;

  // Failure travels in-band (not as an exception) so a coalesced waiter and
  // the flight's leader reach the same verdict: both see the marked response
  // and report ok=false, matching the sim path's "origin produced nothing".
  auto fetch = [&]() -> http::response {
    if (auto hit = content_cache_.get(key, static_cast<std::int64_t>(virtual_now()))) {
      return std::move(*hit);
    }
    auto resp = concrete->serve_now(r);
    if (!resp) {
      http::response err = http::make_error_response(502, "sub-fetch origin failure");
      err.headers.set("X-Nakika-Fetch-Failed", "1");
      return err;
    }
    content_cache_.put(key, *resp, static_cast<std::int64_t>(virtual_now()));
    return std::move(*resp);
  };

  if (r.url.query().empty()) {
    // Sub-fetches coalesce in their own flight table (never shared with
    // top-level misses, whose leaders additionally render + advertise); a
    // sub-fetch for a URL this worker is already fetching runs directly
    // (leader re-entrancy) instead of deadlocking.
    bool coalesced = false;
    out.response = sub_flights_.run(key, fetch, &coalesced);
    if (coalesced) counters_.add(0, counter_field::coalesced);
  } else {
    out.response = fetch();
  }
  if (out.response.headers.has("X-Nakika-Fetch-Failed")) return out;  // ok stays false
  out.ok = true;
  return out;
}

// ----- shared per-pipeline accounting ------------------------------------------------

void nakika_node::account_pipeline(const std::string& site,
                                   const core::pipeline_result& result,
                                   double elapsed_seconds, std::size_t counter_slot,
                                   bool record_resources) {
  if (record_resources) {
    const double response_bytes = static_cast<double>(result.response.body_size());
    const double io_bytes =
        static_cast<double>(result.bytes_read + result.bytes_written) + response_bytes;
    std::array<double, core::resource_kind_count> usage{};
    usage[static_cast<std::size_t>(core::resource_kind::cpu)] = result.script_cpu_seconds;
    usage[static_cast<std::size_t>(core::resource_kind::memory)] =
        static_cast<double>(result.heap_bytes);
    usage[static_cast<std::size_t>(core::resource_kind::bandwidth)] = io_bytes;
    usage[static_cast<std::size_t>(core::resource_kind::running_time)] =
        elapsed_seconds + result.script_cpu_seconds;
    usage[static_cast<std::size_t>(core::resource_kind::total_bytes)] = io_bytes;
    resources_.record_usage(site, usage);
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    script_times_.compile_seconds += result.script_compile_seconds;
    script_times_.execute_seconds += result.script_execute_seconds;
    script_times_.ic_hits += result.ic_hits;
    script_times_.ic_misses += result.ic_misses;
    script_times_.stages_executed += static_cast<std::uint64_t>(result.stages_executed);
    if (result.ic_hits != 0 || result.ic_misses != 0) {
      site_cache_stats& sc = site_cache_[site];
      sc.ic_hits += result.ic_hits;
      sc.ic_misses += result.ic_misses;
    }
    if (!result.log_lines.empty()) {
      auto& log = site_logs_[site];
      log.insert(log.end(), result.log_lines.begin(), result.log_lines.end());
    }
  }

  if (result.terminated) {
    counters_.add(counter_slot, counter_field::terminated);
  } else if (result.failed) {
    counters_.add(counter_slot, counter_field::failed);
  } else {
    counters_.add(counter_slot, counter_field::completed);
  }
}

// ----- request handling ---------------------------------------------------------------

void nakika_node::handle(const http::request& original,
                         std::function<void(http::response)> done) {
  if (pool_ != nullptr) {
    // Worker mode: enqueue onto the bounded MPMC queue; a full queue is the
    // backpressure signal and rejects immediately on the caller's thread.
    auto done_shared =
        std::make_shared<std::function<void(http::response)>>(std::move(done));
    const bool accepted =
        pool_->try_submit([this, r = original, done_shared](core::worker_context& wc) {
          execute_on_worker(r, wc, *done_shared);
        });
    if (!accepted) {
      counters_.add(0, counter_field::offered);
      counters_.add(0, counter_field::rejected);
      (*done_shared)(http::make_error_response(503, "server busy (queue full)"));
    }
    return;
  }

  counters_.add(0, counter_field::offered);

  http::request r = original;
  if (overlay::is_nakika_host(r.url.host())) {
    r.url.set_host(overlay::from_nakika_host(r.url.host()));
  }
  const std::string site = r.url.site();

  if (config_.resource_controls && !resources_.admit(site, rng_, net_.loop().now())) {
    // Throttled rejection is a shared-memory flag check in the paper's
    // implementation — far cheaper than full request processing.
    counters_.add(0, counter_field::throttled);
    net_.run_cpu(host_, 0.0001, [done = std::move(done)]() mutable {
      done(http::make_error_response(503, "server busy (throttled)"));
    });
    return;
  }

  if (!config_.scripting) {
    // DHT-only mode: cache + cooperative lookup, no scripting pipeline.
    net_.run_cpu(host_, config_.costs.proxy_overhead,
                 [this, site, r, done = std::move(done)]() mutable {
                   fetch_resource(site, r, [this, done = std::move(done)](
                                               http::response resp, double cpu) mutable {
                     counters_.add(0, counter_field::completed);
                     net_.run_cpu(host_, cpu + config_.costs.dht_processing,
                                  [done = std::move(done), resp = std::move(resp)]() mutable {
                                    done(std::move(resp));
                                  });
                   });
                 });
    return;
  }

  double setup_cpu = config_.costs.proxy_overhead;
  core::sandbox* sb = acquire_sandbox(site, setup_cpu);
  resources_.pipeline_started(site, sb->kill_flag());

  core::exec_state base;
  base.site = site;
  base.local_specs = config_.local_specs;
  base.now = static_cast<std::int64_t>(net_.loop().now());
  base.http_cache = &content_cache_;
  base.store = &store_;
  const auto rep = replicas_.find(site);
  base.replica = rep == replicas_.end() ? nullptr : rep->second;
  base.fetch = [this](const http::request& sub) { return sub_fetch(sub); };
  base.resources = resources_.view_for(site);

  const std::string site_script_url = site + "/nakika.js";
  const double start_time = net_.loop().now();

  pipeline_.execute(
      std::move(r), *sb, site_script_url,
      [this](const std::string& url, std::function<void(core::stage_fetch_result)> cb) {
        load_stage_script(url, std::move(cb));
      },
      [this, site](const http::request& req,
                   std::function<void(http::response, double)> cb) {
        fetch_resource(site, req, std::move(cb));
      },
      std::move(base),
      [this, site, sb, setup_cpu, start_time,
       done = std::move(done)](core::pipeline_result result) mutable {
        resources_.pipeline_finished(site, sb->kill_flag());
        const bool poisoned = result.terminated || result.failed;
        release_sandbox(site, sb, poisoned);

        const double elapsed = net_.loop().now() - start_time;
        account_pipeline(site, result, elapsed, /*counter_slot=*/0,
                         /*record_resources=*/true);

        note_churn(static_cast<double>(result.heap_bytes));
        const double cpu = (setup_cpu + result.script_cpu_seconds +
                            config_.stage_overhead * result.stages_executed) *
                           thrash_factor();
        const double extra_delay = result.virtual_delay_seconds;
        net_.run_cpu(host_, cpu, [this, extra_delay, done = std::move(done),
                                  resp = std::move(result.response)]() mutable {
          if (extra_delay > 0) {
            net_.loop().schedule(extra_delay,
                                 [done = std::move(done), resp = std::move(resp)]() mutable {
                                   done(std::move(resp));
                                 });
          } else {
            done(std::move(resp));
          }
        });
      });
}

// Worker-mode request execution: the synchronous pipeline run on a pool
// thread. Stage loads and resource fetches resolve immediately (the pipeline
// executor composes with immediate callbacks), so the whole request completes
// before this function returns and `done` fires on the worker thread.
void nakika_node::execute_on_worker(http::request r, core::worker_context& wc,
                                    std::function<void(http::response)> done) {
  const std::size_t slot = wc.index() + 1;
  counters_.add(slot, counter_field::offered);

  if (overlay::is_nakika_host(r.url.host())) {
    r.url.set_host(overlay::from_nakika_host(r.url.host()));
  }
  const std::string site = r.url.site();

  if (config_.resource_controls && !resources_.admit(site, wc.rng(), virtual_now())) {
    counters_.add(slot, counter_field::throttled);
    done(http::make_error_response(503, "server busy (throttled)"));
    return;
  }

  core::sandbox* sb = nullptr;
  bool finished = false;
  try {
    if (!config_.scripting) {
      http::response resp = fetch_resource_direct(site, r, &wc);
      counters_.add(slot, counter_field::completed);
      finished = true;
      done(std::move(resp));
      return;
    }

    sb = wc.acquire(site, config_.script_limits, config_.script_engine, &chunk_cache_,
                    nullptr);
    resources_.pipeline_started(site, sb->kill_flag());

    core::exec_state base;
    base.site = site;
    base.local_specs = config_.local_specs;
    base.now = static_cast<std::int64_t>(virtual_now());
    base.http_cache = &content_cache_;
    base.store = &store_;
    // replicas_ is wired at deployment time, before serving starts.
    const auto rep = replicas_.find(site);
    base.replica = rep == replicas_.end() ? nullptr : rep->second;
    base.fetch = [this](const http::request& sub) { return sub_fetch_direct(sub); };
    base.resources = resources_.view_for(site);

    const std::string site_script_url = site + "/nakika.js";
    const auto wall_start = std::chrono::steady_clock::now();

    // The loaders below resolve synchronously, so the completion lambda runs
    // before execute() returns; `done` is captured by value so the callback
    // owns everything it touches except the long-lived wc/node state.
    pipeline_.execute(
        std::move(r), *sb, site_script_url,
        [this](const std::string& url, std::function<void(core::stage_fetch_result)> cb) {
          cb(load_stage_script_direct(url));
        },
        [this, site, &wc](const http::request& req,
                          std::function<void(http::response, double)> cb) {
          cb(fetch_resource_direct(site, req, &wc), 0.0);
        },
        std::move(base),
        [this, site, sb, slot, &wc, wall_start, done, &finished](
            core::pipeline_result result) {
          resources_.pipeline_finished(site, sb->kill_flag());
          const bool poisoned = result.terminated || result.failed;
          wc.release(site, sb, poisoned);
          // With resource controls off nothing reads the usage counters, so
          // skip the (shared-lock) recording on the fast path.
          account_pipeline(site, result, seconds_since(wall_start), slot,
                           /*record_resources=*/config_.resource_controls);
          finished = true;
          done(std::move(result.response));
        });
  } catch (...) {
    // The pipeline itself converts script failures into responses; landing
    // here means host code threw (an origin handler, allocation failure).
    // The request must still be answered and the sandbox/registration must
    // not leak. A throw from `done` after completion is not ours to answer —
    // rethrow so the pool's backstop counts it.
    if (finished) throw;
    if (sb != nullptr) {
      resources_.pipeline_finished(site, sb->kill_flag());
      wc.release(site, sb, /*poisoned=*/true);
    }
    counters_.add(slot, counter_field::failed);
    done(http::make_error_response(500, "internal error on worker"));
  }
}

// ----- memory-pressure model ---------------------------------------------------------

void nakika_node::note_churn(double bytes) {
  const double now = net_.loop().now();
  constexpr double window = 0.25;  // seconds
  if (now - churn_window_start_ >= window) {
    churn_rate_ = churn_window_bytes_ / std::max(window, now - churn_window_start_);
    churn_window_start_ = now;
    churn_window_bytes_ = 0.0;
  }
  churn_window_bytes_ += bytes;
}

double nakika_node::thrash_factor() const {
  const double capacity = config_.capacities.memory_bytes_per_second;
  if (capacity <= 0 || churn_rate_ <= capacity) return 1.0;
  return std::min(churn_rate_ / capacity, 64.0);
}

// ----- resource-control monitor ----------------------------------------------------

void nakika_node::start_monitor() {
  if (monitor_running_ || !config_.resource_controls) return;
  monitor_running_ = true;
  if (pool_ != nullptr) {
    // Worker mode: a real background thread runs CONTROL against wall-clock
    // time; phase-2 terminations set kill flags that VM loops on worker
    // threads observe at back-edges.
    monitor_thread_ = std::thread([this] { monitor_main(); });
    return;
  }
  monitor_tick(0);
}

void nakika_node::monitor_tick(std::size_t /*kind_index*/) {
  // CONTROL runs for every tracked resource each cycle: phase 1, wait the
  // control timeout ("note that our implementation does not block but
  // rather polls"), then phase 2.
  net_.loop().schedule(config_.control_interval, [this]() {
    // Housekeeping alongside the resource sweep: drop expired script sources
    // and negative verdicts so they don't sit resident until capacity
    // eviction happens to pick them.
    const auto now = static_cast<std::int64_t>(net_.loop().now());
    script_cache_.purge_expired(now);
    no_script_.purge_expired(now);
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      resources_.control_phase1(static_cast<core::resource_kind>(k), net_.loop().now());
    }
    net_.loop().schedule(config_.control_timeout, [this]() {
      for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
        const core::control_outcome outcome = resources_.control_phase2(
            static_cast<core::resource_kind>(k), net_.loop().now());
        if (!outcome.terminated_site.empty()) {
          NAKIKA_LOG(info, "monitor")
              << "terminated pipelines of " << outcome.terminated_site;
        }
      }
      monitor_tick(0);
    });
  });
}

void nakika_node::monitor_main() {
  const auto interval =
      std::chrono::duration<double>(std::max(config_.control_interval, 1e-3));
  const auto timeout =
      std::chrono::duration<double>(std::max(config_.control_timeout, 1e-3));
  std::unique_lock<std::mutex> lock(monitor_mu_);
  while (!monitor_stop_) {
    if (monitor_cv_.wait_for(lock, interval, [this] { return monitor_stop_; })) return;
    lock.unlock();
    const auto now_epoch = static_cast<std::int64_t>(virtual_now());
    script_cache_.purge_expired(now_epoch);
    no_script_.purge_expired(now_epoch);
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      resources_.control_phase1(static_cast<core::resource_kind>(k), virtual_now());
    }
    lock.lock();
    if (monitor_cv_.wait_for(lock, timeout, [this] { return monitor_stop_; })) return;
    lock.unlock();
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      const core::control_outcome outcome =
          resources_.control_phase2(static_cast<core::resource_kind>(k), virtual_now());
      if (!outcome.terminated_site.empty()) {
        NAKIKA_LOG(info, "monitor")
            << "terminated pipelines of " << outcome.terminated_site;
      }
    }
    lock.lock();
  }
}

}  // namespace nakika::proxy
