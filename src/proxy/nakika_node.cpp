#include "proxy/nakika_node.hpp"

#include <stdexcept>

#include "http/wire.hpp"
#include "overlay/redirector.hpp"
#include "proxy/plain_proxy.hpp"
#include "util/ebr.hpp"
#include "util/logging.hpp"

namespace nakika::proxy {

using counter_field = util::sharded_run_counters::field;

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Trace clock: virtual time on the workers=0 sim path (the event loop does
// not advance during synchronous CPU work, so span stamps are reproducible
// for a fixed seed), TSC-backed wall seconds since node start in worker
// mode — a span takes several stamps per request, so the cheap clock is
// what keeps the telemetry overhead gate honest.
double trace_clock(void* node) {
  return static_cast<const nakika_node*>(node)->trace_now();
}
}  // namespace

nakika_node::nakika_node(sim::network& net, sim::node_id host,
                         endpoint_resolver resolve_origin, node_config config)
    : net_(net),
      host_(host),
      resolve_origin_(std::move(resolve_origin)),
      config_(std::move(config)),
      pipeline_(config_.pipeline),
      resources_(config_.capacities),
      content_cache_(config_.content_cache_bytes, config_.content_cache_shards,
                     config_.content_cache_borrowing, config_.cache_admission),
      script_cache_(config_.script_cache_entries),
      no_script_(config_.default_script_ttl > 0 ? config_.default_script_ttl : 300,
                 config_.script_cache_entries),
      chunk_cache_(config_.chunk_cache_entries),
      metrics_(config_.workers + 1),
      spans_(config_.workers + 1, config_.span_ring_capacity),
      site_obs_(config_.workers + 1),
      trace_decim_(config_.workers),
      counters_(config_.workers + 1),
      rng_(config_.rng_seed) {
  register_metrics();
  // Tenant isolation wiring (setup-time: before any request is served).
  for (const auto& [tenant, quota] : config_.tenant_cache_quota_bytes) {
    content_cache_.set_tenant_quota(tenant, quota);
  }
  for (const auto& [site, weight] : config_.site_weights) {
    resources_.set_site_weight(site, weight);
  }
  if (config_.workers > 0) {
    core::worker_pool_config wp;
    wp.workers = config_.workers;
    wp.queue_capacity = config_.queue_capacity;
    // Offset so worker admission draws differ from the sim-path stream.
    wp.rng_seed = config_.rng_seed + 0x9e3779b97f4a7c15ULL;
    pool_ = std::make_unique<core::worker_pool>(wp);
  }
}

nakika_node::~nakika_node() {
  if (pool_ != nullptr) pool_->stop();
  if (monitor_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(monitor_mu_);
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    monitor_thread_.join();
  }
}

void nakika_node::drain() {
  if (pool_ != nullptr) pool_->drain();
}

double nakika_node::virtual_now() const {
  if (pool_ != nullptr) return seconds_since(start_time_);
  return net_.loop().now();
}

double nakika_node::trace_now() const {
  if (pool_ != nullptr) return obs::fast_clock::now_seconds() - trace_epoch_;
  return net_.loop().now();
}

void nakika_node::set_wall_sources(std::string clientwall, std::string serverwall) {
  config_.clientwall_source = std::move(clientwall);
  config_.serverwall_source = std::move(serverwall);
}

void nakika_node::attach_peer_transport(std::unique_ptr<net::peer_transport> transport) {
  transport_ = std::move(transport);
}

void nakika_node::attach_replica(const std::string& site, state::replica* r) {
  replicas_[site] = r;
}

std::optional<http::response> nakika_node::lookup_cache_only(const std::string& url) {
  // virtual_now (not the raw loop clock) so the probe is safe and fresh when
  // a foreign node's worker thread calls in while we serve in worker mode.
  const auto now = static_cast<std::int64_t>(virtual_now());
  return content_cache_.get(url, now);
}

void nakika_node::register_metrics() {
  for (std::size_t i = 0; i < obs::stage_count; ++i) {
    ids_.stage_hist[i] = metrics_.histogram(
        std::string("latency.") + obs::to_string(static_cast<obs::stage>(i)));
  }
  ids_.compile_nanos = metrics_.counter("script.compile_nanos");
  ids_.execute_nanos = metrics_.counter("script.execute_nanos");
  ids_.ic_hits = metrics_.counter("script.ic_hits");
  ids_.ic_misses = metrics_.counter("script.ic_misses");
  ids_.ic_mono_hits = metrics_.counter("script.ic_mono_hits");
  ids_.ic_poly_hits = metrics_.counter("script.ic_poly_hits");
  ids_.ic_mega_lookups = metrics_.counter("script.ic_mega_lookups");
  ids_.shape_transitions = metrics_.counter("shapes.transitions");
  ids_.shape_dict_fallbacks = metrics_.counter("shapes.dict_fallbacks");
  ids_.shapes_live = metrics_.gauge("shapes.live");
  ids_.stages_executed = metrics_.counter("script.stages_executed");
  ids_.out_cache_hit = metrics_.counter("outcome.cache_hit");
  ids_.out_cache_miss = metrics_.counter("outcome.cache_miss");
  ids_.out_peer_hit = metrics_.counter("outcome.peer_hit");
  ids_.out_origin = metrics_.counter("outcome.origin_fetch");
  ids_.out_coalesced = metrics_.counter("outcome.coalesced");
  ids_.out_throttled = metrics_.counter("outcome.throttled");
  ids_.out_terminated = metrics_.counter("outcome.terminated");
  ids_.out_failed = metrics_.counter("outcome.failed");
  ids_.out_nkp = metrics_.counter("outcome.nkp_render");
  ids_.gc_collections = metrics_.counter("gc.collections");
  ids_.gc_objects = metrics_.counter("gc.objects_collected");
  ids_.gc_bytes = metrics_.counter("gc.bytes_reclaimed");
  ids_.gc_pause = metrics_.histogram("gc_pause");
}

std::vector<std::string> nakika_node::site_log(const std::string& site) const {
  // Slot 0 (the sim/caller thread) first, then workers in index order, so the
  // single-threaded sim path preserves exact Log.write ordering.
  std::vector<std::string> out;
  site_obs_.for_key(site, [&out](const site_obs& s) {
    out.insert(out.end(), s.log.begin(), s.log.end());
  });
  return out;
}

nakika_node::script_time_stats nakika_node::script_times() const {
  script_time_stats out;
  out.compile_seconds =
      static_cast<double>(metrics_.counter_value(ids_.compile_nanos)) * 1e-9;
  out.execute_seconds =
      static_cast<double>(metrics_.counter_value(ids_.execute_nanos)) * 1e-9;
  out.ic_hits = metrics_.counter_value(ids_.ic_hits);
  out.ic_misses = metrics_.counter_value(ids_.ic_misses);
  out.ic_mono_hits = metrics_.counter_value(ids_.ic_mono_hits);
  out.ic_poly_hits = metrics_.counter_value(ids_.ic_poly_hits);
  out.ic_mega_lookups = metrics_.counter_value(ids_.ic_mega_lookups);
  out.shape_transitions = metrics_.counter_value(ids_.shape_transitions);
  out.shape_dict_fallbacks = metrics_.counter_value(ids_.shape_dict_fallbacks);
  out.stages_executed = metrics_.counter_value(ids_.stages_executed);
  // Chunk-cache probes are counted by the (node-wide, thread-safe) cache
  // itself; snapshot BOTH sides from it so hits and misses describe the same
  // probe population (pipeline stage loads + nkp renders alike) and
  // hits/(hits+misses) is a real hit rate.
  out.chunk_cache_hits = chunk_cache_.hits();
  out.chunk_cache_misses = chunk_cache_.misses();
  return out;
}

nakika_node::site_cache_stats nakika_node::site_cache(const std::string& site) const {
  site_cache_stats out;
  site_obs_.for_key(site, [&out](const site_obs& s) {
    out.ic_hits += s.ic_hits;
    out.ic_misses += s.ic_misses;
    out.ic_mono_hits += s.ic_mono_hits;
    out.ic_poly_hits += s.ic_poly_hits;
    out.ic_mega_lookups += s.ic_mega_lookups;
  });
  return out;
}

std::size_t nakika_node::sandboxes_created() const {
  return sandbox_pool_.created() + (pool_ != nullptr ? pool_->sandboxes_created() : 0);
}

// ----- sandbox pool -----------------------------------------------------------

core::sandbox* nakika_node::acquire_sandbox(const std::string& site, double& cpu_cost) {
  bool created = false;
  core::sandbox* sb = sandbox_pool_.acquire(site, config_.script_limits,
                                            config_.script_engine, &chunk_cache_, &created);
  cpu_cost += created ? config_.costs.context_create : config_.costs.context_reuse;
  return sb;
}

js::gc_cycle_result nakika_node::release_sandbox(const std::string& site,
                                                 core::sandbox* sb, bool poisoned) {
  const js::gc_cycle_result gc =
      reclaim_sandbox(site, sb, poisoned, /*slot=*/0, config_.resource_controls);
  sandbox_pool_.release(site, sb, poisoned);
  return gc;
}

js::gc_cycle_result nakika_node::reclaim_sandbox(const std::string& site,
                                                 core::sandbox* sb, bool poisoned,
                                                 std::size_t slot,
                                                 bool record_resources) {
  js::gc_cycle_result gc;
  if (sb == nullptr || poisoned) return gc;  // poisoned sandboxes are destroyed
  gc = sb->reclaim();
  if (gc.objects_collected == 0 && gc.envs_collected == 0 && gc.cells_collected == 0 &&
      gc.seconds == 0.0) {
    return gc;  // nothing dirty: pool.release's own reclaim() no-ops too
  }
  // The tenant whose scripts built the garbage pays for collecting it, even
  // though the collection runs after its response was sent.
  if (record_resources && gc.seconds > 0.0) {
    resources_.record(site, core::resource_kind::cpu, gc.seconds);
  }
  metrics_.add(slot, ids_.gc_collections, 1);
  metrics_.add(slot, ids_.gc_objects, gc.objects_collected);
  metrics_.add(slot, ids_.gc_bytes, gc.bytes_reclaimed);
  if (gc.seconds > 0.0) metrics_.record_seconds(slot, ids_.gc_pause, gc.seconds);
  site_obs_.update(slot, site, [&gc](site_obs& s) {
    s.gc_seconds += gc.seconds;
    s.gc_collections += 1;
  });
  return gc;
}

// ----- stage script loading ------------------------------------------------------

std::optional<core::stage_fetch_result> nakika_node::probe_stage_script(
    const std::string& url, std::int64_t now) {
  core::stage_fetch_result out;

  // Administrative walls come from node configuration (the paper fetches
  // them from nakika.net and caches; administrators may override locally).
  if (url == config_.pipeline.clientwall_url) {
    out.found = !config_.clientwall_source.empty();
    out.source = config_.clientwall_source;
    out.version = 1;
    return out;
  }
  if (url == config_.pipeline.serverwall_url) {
    out.found = !config_.serverwall_source.empty();
    out.source = config_.serverwall_source;
    out.version = 1;
    return out;
  }

  if (no_script_.contains(url, now)) return out;  // cached "no such script"
  if (auto cached = script_cache_.get(url, now)) {
    out.found = true;
    out.source = std::move(cached->source);
    out.version = cached->version;
    return out;
  }
  // Scripts are ordinary HTTP resources subject to ordinary caching (§3.1);
  // dynamically generated stage code (e.g. the blacklist extension) lands in
  // the content cache via the Cache vocabulary and is loadable from there.
  if (auto content = content_cache_.get(url, now)) {
    if (content->ok() && content->body) {
      out.found = true;
      out.source = content->body->str();
      // Content-hash versioning: identical generated code reuses the
      // compiled stage; regenerated code reloads.
      out.version = std::hash<std::string>{}(out.source) | 1;
      return out;
    }
  }
  return std::nullopt;  // needs an origin fetch
}

core::stage_fetch_result nakika_node::finish_stage_script_fetch(const std::string& url,
                                                                http::response* resp,
                                                                std::int64_t later) {
  core::stage_fetch_result out;
  if (resp == nullptr || !resp->ok() || !resp->body) {
    no_script_.insert(url, later);
    return out;
  }
  script_entry entry;
  entry.source = resp->body->str();
  entry.version = next_script_version_.fetch_add(1, std::memory_order_relaxed);
  const http::freshness f = http::compute_freshness(*resp, later);
  const std::int64_t expiry =
      f.cacheable ? f.expires_at : later + config_.default_script_ttl;
  script_cache_.put(url, entry, expiry);
  out.found = true;
  out.source = std::move(entry.source);
  out.version = entry.version;
  return out;
}

void nakika_node::load_stage_script(const std::string& url,
                                    std::function<void(core::stage_fetch_result)> cb) {
  const auto now = static_cast<std::int64_t>(net_.loop().now());
  if (auto probed = probe_stage_script(url, now)) {
    cb(std::move(*probed));
    return;
  }

  http::request script_request;
  try {
    script_request.url = http::url::parse(url);
  } catch (const std::invalid_argument&) {
    no_script_.insert(url, now);
    cb(core::stage_fetch_result{});
    return;
  }
  script_request.client_ip = "0.0.0.0";

  http_endpoint* origin = resolve_origin_(script_request.url.host());
  if (origin == nullptr) {
    no_script_.insert(url, now);
    cb(core::stage_fetch_result{});
    return;
  }
  forward_request(net_, host_, *origin, script_request,
                  [this, url, cb = std::move(cb)](http::response resp) mutable {
                    const auto later = static_cast<std::int64_t>(net_.loop().now());
                    cb(finish_stage_script_fetch(url, &resp, later));
                  });
}

// Synchronous twin of load_stage_script for the worker path: identical cache
// discipline (shared helpers above), but origin access goes through
// origin_server::serve_now instead of the (single-threaded) event loop.
core::stage_fetch_result nakika_node::load_stage_script_direct(const std::string& url) {
  const auto now = static_cast<std::int64_t>(virtual_now());
  if (auto probed = probe_stage_script(url, now)) return std::move(*probed);

  http::request script_request;
  try {
    script_request.url = http::url::parse(url);
  } catch (const std::invalid_argument&) {
    no_script_.insert(url, now);
    return core::stage_fetch_result{};
  }
  script_request.client_ip = "0.0.0.0";

  auto* origin = dynamic_cast<origin_server*>(resolve_origin_(script_request.url.host()));
  if (origin == nullptr) {
    no_script_.insert(url, now);
    return core::stage_fetch_result{};
  }
  auto resp = origin->serve_now(script_request);
  const auto later = static_cast<std::int64_t>(virtual_now());
  return finish_stage_script_fetch(url, resp ? &*resp : nullptr, later);
}

// ----- resource fetching -----------------------------------------------------------

http::response nakika_node::maybe_render_nkp(const std::string& site, const http::request& r,
                                             http::response resp, core::worker_context* wc,
                                             obs::trace_context* trace) {
  if (!config_.enable_pages || !resp.ok() || !resp.body) return resp;
  const std::string content_type = resp.headers.get_or("Content-Type", "");
  if (!core::is_nkp_resource(r.url.path(), content_type)) return resp;
  obs::trace_context::scoped nkp_span(trace, obs::stage::nkp_render);
  if (trace != nullptr) trace->flag(obs::span_flag::nkp);

  // Compile the page into a one-policy script and run its onResponse in the
  // site's sandbox (the paper layers NKP on the event model the same way).
  std::string script;
  try {
    script = core::compile_nkp(resp.body->str());
  } catch (const std::invalid_argument& e) {
    return http::make_error_response(500, std::string("nkp: ") + e.what());
  }

  double cpu = 0.0;
  core::sandbox* sb = nullptr;
  if (wc != nullptr) {
    bool created = false;
    sb = wc->acquire(site, config_.script_limits, config_.script_engine, &chunk_cache_,
                     &created);
  } else {
    sb = acquire_sandbox(site, cpu);
  }
  bool poisoned = false;
  http::response rendered = std::move(resp);
  try {
    sb->begin_run();
    // The version bump forces a reload per render, so a compiled matcher
    // could never be reused — keep the tree walk for this one-shot stage.
    const core::sandbox::loaded_stage& stage = sb->load_stage(
        r.url.str() + "#nkp", script,
        next_script_version_.fetch_add(1, std::memory_order_relaxed),
        /*stats=*/nullptr, /*compile_matcher=*/false);
    const core::match_result match = sb->match_stage(stage, r);
    if (match.found() && match.matched->has_on_response()) {
      core::exec_state exec;
      exec.site = site;
      exec.now = static_cast<std::int64_t>(virtual_now());
      exec.request = const_cast<http::request*>(&r);
      exec.response = &rendered;
      exec.store = &store_;
      exec.http_cache = &content_cache_;
      sb->binding()->current = &exec;
      core::sync_request_to_script(sb->ctx(), r);
      core::sync_response_to_script(sb->ctx(), rendered);
      js::interpreter in(sb->ctx());
      in.call(match.matched->on_response, js::value::undefined(), {});
      core::read_back_response(sb->ctx(), exec, rendered);
      sb->binding()->current = nullptr;
    }
  } catch (const js::script_error& e) {
    poisoned = true;
    rendered = http::make_error_response(500, std::string("nkp script: ") + e.what());
  } catch (const core::request_terminated_signal&) {
    sb->binding()->current = nullptr;
  }
  if (wc != nullptr) {
    wc->release(site, sb, poisoned);
  } else {
    release_sandbox(site, sb, poisoned);
  }
  return rendered;
}

void nakika_node::fetch_from_origin(const http::request& r,
                                    std::function<void(http::response, double)> cb) {
  http_endpoint* origin = resolve_origin_(r.url.host());
  if (origin == nullptr) {
    cb(http::make_error_response(502, "cannot resolve " + r.url.host()), 0.0);
    return;
  }
  forward_request(net_, host_, *origin, r,
                  [cb = std::move(cb)](http::response resp) mutable {
                    cb(std::move(resp), 0.0);
                  });
}

void nakika_node::fetch_resource(const std::string& site, const http::request& r,
                                 std::function<void(http::response, double)> cb,
                                 obs::trace_context* trace) {
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    if (trace != nullptr) trace->flag(obs::span_flag::cache_hit);
    cb(std::move(*hit), config_.costs.cache_hit_serve);
    return;
  }
  if (trace != nullptr) trace->flag(obs::span_flag::cache_miss);

  auto finish_with = [this, site, r, key, cb, trace](http::response resp) mutable {
    resp = maybe_render_nkp(site, r, std::move(resp), nullptr, trace);
    const auto later = static_cast<std::int64_t>(net_.loop().now());
    const bool stored = content_cache_.put(key, resp, later);
    if (stored && transport_ != nullptr) {
      // Advertise our copy: "one cached copy ... is sufficient for avoiding
      // origin server accesses".
      const http::freshness f = http::compute_freshness(resp, later);
      transport_->advertise(key, f.expires_at);
    }
    cb(std::move(resp), 0.0);
  };

  // The overlay is only worth consulting for content that peers could have
  // cached; query-bearing URLs are dynamic/personalized and go straight to
  // the origin (as CoralCDN does for uncacheable content).
  const bool overlay_worthwhile = r.url.query().empty();
  if (transport_ != nullptr && overlay_worthwhile) {
    const double peer_begin = trace != nullptr && trace->enabled() ? trace->now() : 0.0;
    transport_->fetch_from_peers(
        r, [this, r, finish_with, trace, peer_begin](net::peer_transport::result res) mutable {
          if (trace != nullptr && trace->enabled()) {
            trace->add(obs::stage::peer_fetch, trace->now() - peer_begin);
          }
          if (res.response) {
            counters_.add(0, counter_field::peer_hits);
            if (trace != nullptr) trace->flag(obs::span_flag::peer_hit);
            finish_with(std::move(*res.response));
            return;
          }
          counters_.add(0, counter_field::peer_misses);
          const double origin_begin =
              trace != nullptr && trace->enabled() ? trace->now() : 0.0;
          fetch_from_origin(r, [finish_with, trace,
                                origin_begin](http::response resp, double) mutable {
            if (trace != nullptr && trace->enabled()) {
              trace->add(obs::stage::origin_fetch, trace->now() - origin_begin);
              trace->flag(obs::span_flag::origin);
            }
            finish_with(std::move(resp));
          });
        });
    return;
  }

  const double origin_begin = trace != nullptr && trace->enabled() ? trace->now() : 0.0;
  fetch_from_origin(r, [finish_with, trace, origin_begin](http::response resp,
                                                          double) mutable {
    if (trace != nullptr && trace->enabled()) {
      trace->add(obs::stage::origin_fetch, trace->now() - origin_begin);
      trace->flag(obs::span_flag::origin);
    }
    finish_with(std::move(resp));
  });
}

// Synchronous twin of fetch_resource for the worker path: cache, then the
// single-flight miss path (peer transport, then origin via serve_now). No
// virtual-delay sleeping — workers burn real time; the transport's virtual
// network cost is accounted in peer_latency_seconds instead.
http::response nakika_node::fetch_resource_direct(const std::string& site,
                                                  const http::request& r,
                                                  core::worker_context* wc,
                                                  obs::trace_context* trace) {
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(virtual_now());

  {
    obs::trace_context::scoped lookup_span(trace, obs::stage::cache_lookup);
    if (auto hit = content_cache_.get(key, now)) {
      if (trace != nullptr) trace->flag(obs::span_flag::cache_hit);
      return std::move(*hit);
    }
  }
  if (trace != nullptr) trace->flag(obs::span_flag::cache_miss);

  // Query-bearing URLs are dynamic/personalized: each request must reach the
  // origin itself, so they bypass coalescing (same rule as the overlay).
  if (!r.url.query().empty()) return fetch_miss_direct(site, r, wc, trace);

  bool coalesced = false;
  const double flight_begin = trace != nullptr && trace->enabled() ? trace->now() : 0.0;
  http::response out = flights_.run(
      key, [&] { return fetch_miss_direct(site, r, wc, trace); }, &coalesced);
  if (coalesced) {
    const std::size_t slot = wc != nullptr ? wc->index() + 1 : 0;
    counters_.add(slot, counter_field::coalesced);
    if (trace != nullptr && trace->enabled()) {
      // The whole run() was spent blocked on the flight leader.
      trace->add(obs::stage::coalesced_wait, trace->now() - flight_begin);
      trace->flag(obs::span_flag::coalesced);
    }
  }
  return out;
}

http::response nakika_node::fetch_miss_direct(const std::string& site,
                                              const http::request& r,
                                              core::worker_context* wc,
                                              obs::trace_context* trace) {
  const std::string key = r.url.str();
  const std::size_t slot = wc != nullptr ? wc->index() + 1 : 0;

  // A flight that completed between our miss and taking leadership may have
  // filled the cache already; serve that instead of refetching.
  if (auto hit = content_cache_.get(key, static_cast<std::int64_t>(virtual_now()))) {
    return std::move(*hit);
  }

  auto finish_with = [&](http::response resp) {
    resp = maybe_render_nkp(site, r, std::move(resp), wc, trace);
    const auto later = static_cast<std::int64_t>(virtual_now());
    const bool stored = content_cache_.put(key, resp, later);
    if (stored && transport_ != nullptr) {
      const http::freshness f = http::compute_freshness(resp, later);
      transport_->advertise(key, f.expires_at);
    }
    return resp;
  };

  if (transport_ != nullptr && r.url.query().empty()) {
    net::peer_transport::result res;
    {
      obs::trace_context::scoped peer_span(trace, obs::stage::peer_fetch);
      transport_->fetch_from_peers(
          r, [&res](net::peer_transport::result found) { res = std::move(found); });
    }
    peer_latency_micros_.fetch_add(static_cast<std::uint64_t>(res.latency_seconds * 1e6),
                                   std::memory_order_relaxed);
    if (trace != nullptr && trace->enabled()) {
      // Fold in the transport's accounted virtual network cost (overlay walks
      // + peer round-trips), which wall time on a worker does not include.
      trace->add(obs::stage::peer_fetch, res.latency_seconds);
    }
    if (res.response) {
      counters_.add(slot, counter_field::peer_hits);
      if (trace != nullptr) trace->flag(obs::span_flag::peer_hit);
      return finish_with(std::move(*res.response));
    }
    counters_.add(slot, counter_field::peer_misses);
  }

  obs::trace_context::scoped origin_span(trace, obs::stage::origin_fetch);
  if (trace != nullptr) trace->flag(obs::span_flag::origin);
  auto* origin = dynamic_cast<origin_server*>(resolve_origin_(r.url.host()));
  if (origin == nullptr) {
    return http::make_error_response(502, "cannot resolve " + r.url.host());
  }
  auto resp = origin->serve_now(r);
  if (!resp) {
    return http::make_error_response(502, "origin failure for " + key);
  }
  origin_span.stop();
  return finish_with(std::move(*resp));
}

// ----- script subrequests (Fetch vocabulary) ----------------------------------------

core::fetch_result nakika_node::sub_fetch(const http::request& r) {
  core::fetch_result out;
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(net_.loop().now());

  if (auto hit = content_cache_.get(key, now)) {
    out.ok = true;
    out.response = std::move(*hit);
    out.virtual_delay_seconds = config_.costs.cache_hit_serve;
    return out;
  }
  // Synchronous origin read with an accounted round-trip delay: scripts see
  // blocking semantics (per-script user-level threads in the paper) while
  // the simulator bills the time to the pipeline's completion.
  http_endpoint* origin = resolve_origin_(r.url.host());
  auto* concrete = dynamic_cast<origin_server*>(origin);
  if (concrete == nullptr) {
    return out;  // unreachable or not a direct origin
  }
  double cpu = 0.0;
  auto resp = concrete->serve_now(r, &cpu);
  if (!resp) return out;
  const double rtt = net_.has_route(host_, concrete->host())
                         ? 2.0 * net_.route_latency(host_, concrete->host())
                         : 0.0;
  const double transfer_time =
      static_cast<double>(http::wire_size(*resp)) / 12.5e6;  // nominal LAN rate
  out.ok = true;
  out.response = std::move(*resp);
  out.virtual_delay_seconds = rtt + cpu + transfer_time;
  const auto later = static_cast<std::int64_t>(net_.loop().now());
  content_cache_.put(key, out.response, later);
  return out;
}

core::fetch_result nakika_node::sub_fetch_direct(const http::request& r,
                                                 obs::trace_context* trace) {
  core::fetch_result out;
  const std::string key = r.url.str();
  const auto now = static_cast<std::int64_t>(virtual_now());

  if (auto hit = content_cache_.get(key, now)) {
    out.ok = true;
    out.response = std::move(*hit);
    return out;
  }
  auto* concrete = dynamic_cast<origin_server*>(resolve_origin_(r.url.host()));
  if (concrete == nullptr) return out;

  // Failure travels in-band (not as an exception) so a coalesced waiter and
  // the flight's leader reach the same verdict: both see the marked response
  // and report ok=false, matching the sim path's "origin produced nothing".
  auto fetch = [&]() -> http::response {
    if (auto hit = content_cache_.get(key, static_cast<std::int64_t>(virtual_now()))) {
      return std::move(*hit);
    }
    auto resp = concrete->serve_now(r);
    if (!resp) {
      http::response err = http::make_error_response(502, "sub-fetch origin failure");
      err.headers.set("X-Nakika-Fetch-Failed", "1");
      return err;
    }
    content_cache_.put(key, *resp, static_cast<std::int64_t>(virtual_now()));
    return std::move(*resp);
  };

  if (r.url.query().empty()) {
    // Sub-fetches coalesce in their own flight table (never shared with
    // top-level misses, whose leaders additionally render + advertise); a
    // sub-fetch for a URL this worker is already fetching runs directly
    // (leader re-entrancy) instead of deadlocking.
    bool coalesced = false;
    const double flight_begin = trace != nullptr && trace->enabled() ? trace->now() : 0.0;
    out.response = sub_flights_.run(key, fetch, &coalesced);
    if (coalesced) {
      counters_.add(0, counter_field::coalesced);
      if (trace != nullptr && trace->enabled()) {
        trace->add(obs::stage::coalesced_wait, trace->now() - flight_begin);
        trace->flag(obs::span_flag::coalesced);
      }
    }
  } else {
    out.response = fetch();
  }
  if (out.response.headers.has("X-Nakika-Fetch-Failed")) return out;  // ok stays false
  out.ok = true;
  return out;
}

// ----- shared per-pipeline accounting ------------------------------------------------

void nakika_node::account_pipeline(const std::string& site,
                                   const core::pipeline_result& result,
                                   double elapsed_seconds, std::size_t counter_slot,
                                   bool record_resources) {
  if (record_resources) {
    const double response_bytes = static_cast<double>(result.response.body_size());
    const double io_bytes =
        static_cast<double>(result.bytes_read + result.bytes_written) + response_bytes;
    std::array<double, core::resource_kind_count> usage{};
    // Watermark collections run inside the script's own execution, so their
    // time is part of the CPU this tenant consumed.
    usage[static_cast<std::size_t>(core::resource_kind::cpu)] =
        result.script_cpu_seconds + result.gc_seconds;
    usage[static_cast<std::size_t>(core::resource_kind::memory)] =
        static_cast<double>(result.heap_bytes);
    usage[static_cast<std::size_t>(core::resource_kind::bandwidth)] = io_bytes;
    usage[static_cast<std::size_t>(core::resource_kind::running_time)] =
        elapsed_seconds + result.script_cpu_seconds;
    usage[static_cast<std::size_t>(core::resource_kind::total_bytes)] = io_bytes;
    resources_.record_usage(site, usage);
  }

  // Registry adds: one relaxed atomic add per field into this worker's slot —
  // the hot path holds no lock (the stats mutex this replaced serialized every
  // request in the node).
  metrics_.add(counter_slot, ids_.compile_nanos,
               static_cast<std::uint64_t>(result.script_compile_seconds * 1e9));
  metrics_.add(counter_slot, ids_.execute_nanos,
               static_cast<std::uint64_t>(result.script_execute_seconds * 1e9));
  if (result.ic_hits != 0) metrics_.add(counter_slot, ids_.ic_hits, result.ic_hits);
  if (result.ic_misses != 0) metrics_.add(counter_slot, ids_.ic_misses, result.ic_misses);
  if (result.ic_mono_hits != 0) {
    metrics_.add(counter_slot, ids_.ic_mono_hits, result.ic_mono_hits);
  }
  if (result.ic_poly_hits != 0) {
    metrics_.add(counter_slot, ids_.ic_poly_hits, result.ic_poly_hits);
  }
  if (result.ic_mega_lookups != 0) {
    metrics_.add(counter_slot, ids_.ic_mega_lookups, result.ic_mega_lookups);
  }
  if (result.shape_transitions != 0) {
    metrics_.add(counter_slot, ids_.shape_transitions, result.shape_transitions);
  }
  if (result.shape_dict_fallbacks != 0) {
    metrics_.add(counter_slot, ids_.shape_dict_fallbacks, result.shape_dict_fallbacks);
  }
  // Gauge: size of the shape table the request's sandbox holds — a rough
  // "how interned is the fleet" signal (not a sum; latest writer wins).
  metrics_.set_gauge(counter_slot, ids_.shapes_live, result.shapes_live);
  if (result.stages_executed != 0) {
    metrics_.add(counter_slot, ids_.stages_executed,
                 static_cast<std::uint64_t>(result.stages_executed));
  }
  if (result.gc_collections != 0) {
    metrics_.add(counter_slot, ids_.gc_collections, result.gc_collections);
    metrics_.add(counter_slot, ids_.gc_objects, result.gc_objects_collected);
    metrics_.add(counter_slot, ids_.gc_bytes, result.gc_bytes_reclaimed);
    // Individual safepoint pauses (not whole-run totals) feed the gc_pause
    // histogram — the bounded-increment claim is checked on this data.
    for (const double pause : result.gc_pauses) {
      metrics_.record_seconds(counter_slot, ids_.gc_pause, pause);
    }
  }

  // Per-site accumulators: slot-local (only telemetry readers contend).
  site_obs_.update(counter_slot, site, [&](site_obs& s) {
    s.requests += 1;
    s.ic_hits += result.ic_hits;
    s.ic_misses += result.ic_misses;
    s.ic_mono_hits += result.ic_mono_hits;
    s.ic_poly_hits += result.ic_poly_hits;
    s.ic_mega_lookups += result.ic_mega_lookups;
    s.gc_seconds += result.gc_seconds;
    s.gc_collections += result.gc_collections;
    if (result.terminated) s.terminated += 1;
    for (const std::string& line : result.log_lines) {
      if (config_.site_log_capacity != 0 && s.log.size() >= config_.site_log_capacity) {
        s.log.pop_front();
        s.log_dropped += 1;
      }
      if (config_.site_log_capacity != 0) s.log.push_back(line);
      s.log_lines_total += 1;
    }
  });

  if (result.terminated) {
    counters_.add(counter_slot, counter_field::terminated);
  } else if (result.failed) {
    counters_.add(counter_slot, counter_field::failed);
  } else {
    counters_.add(counter_slot, counter_field::completed);
  }
}

void nakika_node::finish_span(obs::trace_context& trace, std::uint16_t status,
                              double total_seconds, std::size_t slot) {
  trace.add(obs::stage::total, total_seconds);
  obs::span_record& rec = trace.record();
  rec.status = status;

  for (std::size_t i = 0; i < obs::stage_count; ++i) {
    // Total is always recorded (it is the request-latency histogram the
    // benches report); other stages only when they actually ran, so their
    // counts mean "requests that touched this stage".
    if (i == static_cast<std::size_t>(obs::stage::total) || rec.stage_seconds[i] > 0.0) {
      metrics_.record_seconds(slot, ids_.stage_hist[i], rec.stage_seconds[i]);
    }
  }

  using namespace obs::span_flag;
  if (rec.has(cache_hit)) metrics_.add(slot, ids_.out_cache_hit);
  if (rec.has(cache_miss)) metrics_.add(slot, ids_.out_cache_miss);
  if (rec.has(peer_hit)) metrics_.add(slot, ids_.out_peer_hit);
  if (rec.has(origin)) metrics_.add(slot, ids_.out_origin);
  if (rec.has(coalesced)) metrics_.add(slot, ids_.out_coalesced);
  if (rec.has(throttled)) metrics_.add(slot, ids_.out_throttled);
  if (rec.has(terminated)) metrics_.add(slot, ids_.out_terminated);
  if (rec.has(failed)) metrics_.add(slot, ids_.out_failed);
  if (rec.has(nkp)) metrics_.add(slot, ids_.out_nkp);

  spans_.push(slot, std::move(rec));
}

// ----- request handling ---------------------------------------------------------------

void nakika_node::handle(const http::request& original,
                         std::function<void(http::response)> done) {
  if (pool_ != nullptr) {
    // Worker mode: enqueue onto the bounded MPMC queue; a full queue is the
    // backpressure signal and rejects immediately on the caller's thread.
    auto done_shared =
        std::make_shared<std::function<void(http::response)>>(std::move(done));
    // Affinity by site: one site's requests prefer one worker's ring, so its
    // sandbox reuse and cache lines stay warm; stealing rebalances skew.
    const std::uint64_t affinity = std::hash<std::string>{}(original.url.site());
    const bool accepted = pool_->try_submit(
        [this, r = original, done_shared](core::worker_context& wc) {
          execute_on_worker(r, wc, *done_shared);
        },
        affinity);
    if (!accepted) {
      counters_.add(0, counter_field::offered);
      counters_.add(0, counter_field::rejected);
      (*done_shared)(http::make_error_response(503, "server busy (queue full)"));
    }
    return;
  }

  counters_.add(0, counter_field::offered);

  http::request r = original;
  if (overlay::is_nakika_host(r.url.host())) {
    r.url.set_host(overlay::from_nakika_host(r.url.host()));
  }
  const std::string site = r.url.site();

  if (config_.resource_controls && !resources_.admit(site, rng_, net_.loop().now())) {
    // Throttled rejection is a shared-memory flag check in the paper's
    // implementation — far cheaper than full request processing.
    counters_.add(0, counter_field::throttled);
    if (config_.telemetry) {
      obs::trace_context trace(trace_clock, this);
      trace.record().site = site;
      trace.record().path = r.url.path();
      trace.record().start = trace.now();
      trace.flag(obs::span_flag::throttled);
      finish_span(trace, 503, 0.0, /*slot=*/0);
    }
    net_.run_cpu(host_, 0.0001, [done = std::move(done)]() mutable {
      done(http::make_error_response(503, "server busy (throttled)"));
    });
    return;
  }

  if (!config_.scripting) {
    // DHT-only mode: cache + cooperative lookup, no scripting pipeline.
    net_.run_cpu(host_, config_.costs.proxy_overhead,
                 [this, site, r, done = std::move(done)]() mutable {
                   fetch_resource(site, r, [this, done = std::move(done)](
                                               http::response resp, double cpu) mutable {
                     counters_.add(0, counter_field::completed);
                     net_.run_cpu(host_, cpu + config_.costs.dht_processing,
                                  [done = std::move(done), resp = std::move(resp)]() mutable {
                                    done(std::move(resp));
                                  });
                   });
                 });
    return;
  }

  double setup_cpu = config_.costs.proxy_overhead;
  core::sandbox* sb = acquire_sandbox(site, setup_cpu);
  resources_.pipeline_started(site, sb->kill_flag());

  // The trace rides the sim path's async callbacks via shared_ptr; its clock
  // is virtual time, so spans are deterministic for a fixed seed.
  std::shared_ptr<obs::trace_context> trace;
  if (config_.telemetry) {
    trace = std::make_shared<obs::trace_context>(trace_clock, this);
    trace->record().site = site;
    trace->record().path = r.url.path();
    trace->record().start = trace->now();
  }

  core::exec_state base;
  base.site = site;
  base.local_specs = config_.local_specs;
  base.now = static_cast<std::int64_t>(net_.loop().now());
  base.http_cache = &content_cache_;
  base.store = &store_;
  const auto rep = replicas_.find(site);
  base.replica = rep == replicas_.end() ? nullptr : rep->second;
  base.fetch = [this](const http::request& sub) { return sub_fetch(sub); };
  base.resources = resources_.view_for(site);
  base.trace = trace.get();

  const std::string site_script_url = site + "/nakika.js";
  const double start_time = net_.loop().now();

  pipeline_.execute(
      std::move(r), *sb, site_script_url,
      [this](const std::string& url, std::function<void(core::stage_fetch_result)> cb) {
        load_stage_script(url, std::move(cb));
      },
      [this, site, trace](const http::request& req,
                          std::function<void(http::response, double)> cb) {
        fetch_resource(site, req, std::move(cb), trace.get());
      },
      std::move(base),
      [this, site, sb, setup_cpu, start_time, trace,
       done = std::move(done)](core::pipeline_result result) mutable {
        resources_.pipeline_finished(site, sb->kill_flag());
        const bool poisoned = result.terminated || result.failed;
        const js::gc_cycle_result pool_gc = release_sandbox(site, sb, poisoned);

        const double elapsed = net_.loop().now() - start_time;
        account_pipeline(site, result, elapsed, /*counter_slot=*/0,
                         /*record_resources=*/true);
        if (trace != nullptr) {
          const double gc_span = result.gc_seconds + pool_gc.seconds;
          if (gc_span > 0.0) trace->add(obs::stage::gc, gc_span);
          if (result.terminated) trace->flag(obs::span_flag::terminated);
          else if (result.failed) trace->flag(obs::span_flag::failed);
          finish_span(*trace, static_cast<std::uint16_t>(result.response.status), elapsed,
                      /*slot=*/0);
        }

        note_churn(static_cast<double>(result.heap_bytes));
        const double cpu = (setup_cpu + result.script_cpu_seconds +
                            config_.stage_overhead * result.stages_executed) *
                           thrash_factor();
        const double extra_delay = result.virtual_delay_seconds;
        net_.run_cpu(host_, cpu, [this, extra_delay, done = std::move(done),
                                  resp = std::move(result.response)]() mutable {
          if (extra_delay > 0) {
            net_.loop().schedule(extra_delay,
                                 [done = std::move(done), resp = std::move(resp)]() mutable {
                                   done(std::move(resp));
                                 });
          } else {
            done(std::move(resp));
          }
        });
      });
}

// Worker-mode request execution: the synchronous pipeline run on a pool
// thread. Stage loads and resource fetches resolve immediately (the pipeline
// executor composes with immediate callbacks), so the whole request completes
// before this function returns and `done` fires on the worker thread.
void nakika_node::execute_on_worker(http::request r, core::worker_context& wc,
                                    std::function<void(http::response)> done) {
  const std::size_t slot = wc.index() + 1;
  counters_.add(slot, counter_field::offered);
  const auto wall_start = std::chrono::steady_clock::now();

  if (overlay::is_nakika_host(r.url.host())) {
    r.url.set_host(overlay::from_nakika_host(r.url.host()));
  }
  const std::string site = r.url.site();

  // Span sampling (node_config::trace_sample_every): every Nth request per
  // worker gets the full trace — per-stage TSC stamps plus a span-ring
  // entry. The rest still land in the end-to-end latency histogram below,
  // which reuses `wall_start` (taken anyway for billing), so p50/p99/p999
  // stay exact per request while the per-span cost is amortized 1/N.
  bool sampled = false;
  if (config_.telemetry) {
    sampled = config_.trace_sample_every <= 1 ||
              (trace_decim_[wc.index()].n++ % config_.trace_sample_every) == 0;
  }
  // Stack-allocated: the worker path is fully synchronous, so the span lives
  // exactly as long as the request.
  obs::trace_context trace =
      sampled ? obs::trace_context(trace_clock, this) : obs::trace_context();
  obs::trace_context* const tr = trace.enabled() ? &trace : nullptr;
  if (tr != nullptr) {
    trace.record().site = site;
    trace.record().path = r.url.path();
    trace.record().start = trace.now();
  }

  if (config_.resource_controls && !resources_.admit(site, wc.rng(), virtual_now())) {
    counters_.add(slot, counter_field::throttled);
    if (tr != nullptr) {
      trace.flag(obs::span_flag::throttled);
      finish_span(trace, 503, seconds_since(wall_start), slot);
    } else if (config_.telemetry) {
      record_total_latency(slot, seconds_since(wall_start));
    }
    done(http::make_error_response(503, "server busy (throttled)"));
    return;
  }

  core::sandbox* sb = nullptr;
  bool finished = false;
  try {
    if (!config_.scripting) {
      http::response resp = fetch_resource_direct(site, r, &wc, tr);
      counters_.add(slot, counter_field::completed);
      if (tr != nullptr) {
        finish_span(trace, static_cast<std::uint16_t>(resp.status),
                    seconds_since(wall_start), slot);
      } else if (config_.telemetry) {
        record_total_latency(slot, seconds_since(wall_start));
      }
      finished = true;
      done(std::move(resp));
      return;
    }

    sb = wc.acquire(site, config_.script_limits, config_.script_engine, &chunk_cache_,
                    nullptr);
    resources_.pipeline_started(site, sb->kill_flag());

    core::exec_state base;
    base.site = site;
    base.local_specs = config_.local_specs;
    base.now = static_cast<std::int64_t>(virtual_now());
    base.http_cache = &content_cache_;
    base.store = &store_;
    // replicas_ is wired at deployment time, before serving starts.
    const auto rep = replicas_.find(site);
    base.replica = rep == replicas_.end() ? nullptr : rep->second;
    base.fetch = [this, tr](const http::request& sub) { return sub_fetch_direct(sub, tr); };
    base.resources = resources_.view_for(site);
    base.trace = tr;

    const std::string site_script_url = site + "/nakika.js";

    // The loaders below resolve synchronously, so the completion lambda runs
    // before execute() returns; `done` is captured by value so the callback
    // owns everything it touches except the long-lived wc/node state.
    pipeline_.execute(
        std::move(r), *sb, site_script_url,
        [this](const std::string& url, std::function<void(core::stage_fetch_result)> cb) {
          cb(load_stage_script_direct(url));
        },
        [this, site, &wc, tr](const http::request& req,
                              std::function<void(http::response, double)> cb) {
          cb(fetch_resource_direct(site, req, &wc, tr), 0.0);
        },
        std::move(base),
        [this, site, sb, slot, &wc, wall_start, done, &finished, tr](
            core::pipeline_result result) {
          resources_.pipeline_finished(site, sb->kill_flag());
          const bool poisoned = result.terminated || result.failed;
          const js::gc_cycle_result pool_gc =
              reclaim_sandbox(site, sb, poisoned, slot, config_.resource_controls);
          wc.release(site, sb, poisoned);
          const double elapsed = seconds_since(wall_start);
          // With resource controls off nothing reads the usage counters, so
          // skip the (shared-lock) recording on the fast path.
          account_pipeline(site, result, elapsed, slot,
                           /*record_resources=*/config_.resource_controls);
          if (tr != nullptr) {
            const double gc_span = result.gc_seconds + pool_gc.seconds;
            if (gc_span > 0.0) tr->add(obs::stage::gc, gc_span);
            if (result.terminated) tr->flag(obs::span_flag::terminated);
            else if (result.failed) tr->flag(obs::span_flag::failed);
            finish_span(*tr, static_cast<std::uint16_t>(result.response.status),
                        elapsed, slot);
          } else if (config_.telemetry) {
            record_total_latency(slot, elapsed);
          }
          finished = true;
          done(std::move(result.response));
        });
  } catch (...) {
    // The pipeline itself converts script failures into responses; landing
    // here means host code threw (an origin handler, allocation failure).
    // The request must still be answered and the sandbox/registration must
    // not leak. A throw from `done` after completion is not ours to answer —
    // rethrow so the pool's backstop counts it.
    if (finished) throw;
    if (sb != nullptr) {
      resources_.pipeline_finished(site, sb->kill_flag());
      wc.release(site, sb, /*poisoned=*/true);
    }
    counters_.add(slot, counter_field::failed);
    done(http::make_error_response(500, "internal error on worker"));
  }
}

// ----- telemetry export --------------------------------------------------------------

obs::telemetry_snapshot nakika_node::telemetry() const {
  obs::telemetry_snapshot snap;
  snap.node = "node-" + std::to_string(host_);

  // Registry counters (script.*, outcome.*) merged across worker slots.
  obs::metrics_snapshot reg = metrics_.snapshot();
  snap.counters = std::move(reg.counters);

  const util::run_counters rc = counters_.snapshot();
  snap.counters["requests.offered"] = rc.offered;
  snap.counters["requests.completed"] = rc.completed;
  snap.counters["requests.throttled"] = rc.throttled;
  snap.counters["requests.terminated"] = rc.terminated;
  snap.counters["requests.failed"] = rc.failed;
  snap.counters["requests.rejected"] = rc.rejected;
  snap.counters["requests.peer_hits"] = rc.peer_hits;
  snap.counters["requests.peer_misses"] = rc.peer_misses;
  snap.counters["requests.coalesced"] = rc.coalesced;

  const net::single_flight::stats fs = flight_stats();
  snap.counters["single_flight.leaders"] = fs.leaders;
  snap.counters["single_flight.waiters"] = fs.waiters;

  const cache::cache_stats cs = content_cache_.stats();
  snap.counters["cache.hits"] = cs.hits;
  snap.counters["cache.misses"] = cs.misses;
  snap.counters["cache.insertions"] = cs.insertions;
  snap.counters["cache.evictions"] = cs.evictions;
  snap.counters["cache.expirations"] = cs.expirations;
  snap.counters["cache.quota_rejections"] = cs.quota_rejections;
  snap.counters["cache.oversized_rejections"] = cs.oversized_rejections;
  snap.counters["cache.admission_rejected"] = cs.admission_rejected;
  snap.counters["cache.bytes_used"] = content_cache_.bytes_used();

  // Worker-queue health: aggregate depth/steal/overflow counters plus a
  // per-worker breakdown so skewed site affinity shows up as one hot ring
  // with high steal counts on its neighbors.
  if (pool_ != nullptr) {
    snap.counters["queue.depth"] = pool_->queue_depth();
    snap.counters["queue.peak_depth"] = pool_->peak_queue_depth();
    snap.counters["queue.steals"] = pool_->total_steals();
    snap.counters["queue.overflow"] = pool_->overflow_submits();
    for (std::size_t w = 0; w < pool_->workers(); ++w) {
      const std::string prefix = "queue.worker" + std::to_string(w);
      snap.counters[prefix + ".depth"] = pool_->queue_depth(w);
      snap.counters[prefix + ".steals"] = pool_->steals(w);
    }
  }

  // Overlay read-path accounting (worker-mode clusters): fastpath reads took
  // no ring/membership mutex; epoch counters track snapshot reclamation.
  if (transport_ != nullptr) {
    const net::peer_transport::overlay_read_stats os = transport_->read_stats();
    snap.counters["overlay.read_fastpath"] = os.membership_fastpath + os.ring_fastpath;
    snap.counters["overlay.read_slowpath"] = os.membership_slowpath + os.ring_slowpath;
    snap.counters["overlay.epoch_retired"] = util::ebr_domain::instance().retired_count();
    snap.counters["overlay.epoch_reclaimed"] = util::ebr_domain::instance().reclaimed_count();
  }
  snap.counters["chunk_cache.hits"] = chunk_cache_.hits();
  snap.counters["chunk_cache.misses"] = chunk_cache_.misses();
  snap.counters["resources.terminations"] = resources_.terminations();
  snap.counters["resources.throttle_rejections"] = resources_.throttle_rejections();

  snap.values["peer.latency_seconds"] = peer_latency_seconds();
  snap.values["script.compile_seconds"] =
      static_cast<double>(metrics_.counter_value(ids_.compile_nanos)) * 1e-9;
  snap.values["script.execute_seconds"] =
      static_cast<double>(metrics_.counter_value(ids_.execute_nanos)) * 1e-9;

  // Per-stage latency table, in stage order.
  for (std::size_t i = 0; i < obs::stage_count; ++i) {
    obs::stage_stats st;
    st.name = obs::to_string(static_cast<obs::stage>(i));
    st.latency = obs::summarize(metrics_.histogram_merged(ids_.stage_hist[i]));
    snap.stages.push_back(std::move(st));
  }
  {
    // Individual collection pauses (one sample per safepoint slice / cycle),
    // distinct from the per-request "gc" stage above which sums a request's
    // GC time. This is the series that bounds the incremental-pause claim.
    obs::stage_stats st;
    st.name = "gc_pause";
    st.latency = obs::summarize(metrics_.histogram_merged(ids_.gc_pause));
    snap.stages.push_back(std::move(st));
  }

  // Per-tenant breakdowns: observed request/IC/log state merged across worker
  // slots, joined with cache quota accounting and resource-manager shares.
  std::map<std::string, obs::tenant_stats> tenants;
  site_obs_.for_each([&tenants](const std::string& site, const site_obs& s) {
    obs::tenant_stats& t = tenants[site];
    t.site = site;
    t.requests += s.requests;
    t.ic_hits += s.ic_hits;
    t.ic_misses += s.ic_misses;
    t.ic_mono_hits += s.ic_mono_hits;
    t.ic_poly_hits += s.ic_poly_hits;
    t.ic_mega_lookups += s.ic_mega_lookups;
    t.log_lines += s.log_lines_total;
    t.log_dropped += s.log_dropped;
    t.gc_seconds += s.gc_seconds;
    t.gc_collections += s.gc_collections;
  });
  for (auto& [site, t] : tenants) {
    // Cache tenants are keyed by URL host; resource-manager sites by the
    // scheme-qualified site string.
    const std::string host = cache::http_cache::tenant_of(site);
    t.cache_bytes = content_cache_.tenant_bytes(host);
    t.cache_quota = content_cache_.tenant_quota(host);
    t.quota_rejections = content_cache_.tenant_quota_rejections(host);
    t.kills = resources_.site_kills(site);
    t.weight = resources_.site_weight(site);
    t.cpu_share = resources_.contribution(site, core::resource_kind::cpu);
    snap.tenants.push_back(std::move(t));
  }

  snap.spans_retained = spans_.size();
  snap.spans_dropped = spans_.dropped();
  snap.spans_recorded = snap.spans_retained + snap.spans_dropped;
  snap.span_capacity = spans_.capacity_per_slot();
  return snap;
}

// ----- memory-pressure model ---------------------------------------------------------

void nakika_node::note_churn(double bytes) {
  const double now = net_.loop().now();
  constexpr double window = 0.25;  // seconds
  if (now - churn_window_start_ >= window) {
    churn_rate_ = churn_window_bytes_ / std::max(window, now - churn_window_start_);
    churn_window_start_ = now;
    churn_window_bytes_ = 0.0;
  }
  churn_window_bytes_ += bytes;
}

double nakika_node::thrash_factor() const {
  const double capacity = config_.capacities.memory_bytes_per_second;
  if (capacity <= 0 || churn_rate_ <= capacity) return 1.0;
  return std::min(churn_rate_ / capacity, 64.0);
}

// ----- resource-control monitor ----------------------------------------------------

void nakika_node::start_monitor() {
  if (monitor_running_ || !config_.resource_controls) return;
  monitor_running_ = true;
  if (pool_ != nullptr) {
    // Worker mode: a real background thread runs CONTROL against wall-clock
    // time; phase-2 terminations set kill flags that VM loops on worker
    // threads observe at back-edges.
    monitor_thread_ = std::thread([this] { monitor_main(); });
    return;
  }
  monitor_tick(0);
}

void nakika_node::monitor_tick(std::size_t /*kind_index*/) {
  // CONTROL runs for every tracked resource each cycle: phase 1, wait the
  // control timeout ("note that our implementation does not block but
  // rather polls"), then phase 2.
  net_.loop().schedule(config_.control_interval, [this]() {
    // Housekeeping alongside the resource sweep: drop expired script sources
    // and negative verdicts so they don't sit resident until capacity
    // eviction happens to pick them.
    const auto now = static_cast<std::int64_t>(net_.loop().now());
    script_cache_.purge_expired(now);
    no_script_.purge_expired(now);
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      resources_.control_phase1(static_cast<core::resource_kind>(k), net_.loop().now());
    }
    net_.loop().schedule(config_.control_timeout, [this]() {
      for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
        const core::control_outcome outcome = resources_.control_phase2(
            static_cast<core::resource_kind>(k), net_.loop().now());
        if (!outcome.terminated_site.empty()) {
          NAKIKA_LOG(info, "monitor")
              << "terminated pipelines of " << outcome.terminated_site;
        }
      }
      monitor_tick(0);
    });
  });
}

void nakika_node::monitor_main() {
  const auto interval =
      std::chrono::duration<double>(std::max(config_.control_interval, 1e-3));
  const auto timeout =
      std::chrono::duration<double>(std::max(config_.control_timeout, 1e-3));
  std::unique_lock<std::mutex> lock(monitor_mu_);
  while (!monitor_stop_) {
    if (monitor_cv_.wait_for(lock, interval, [this] { return monitor_stop_; })) return;
    lock.unlock();
    const auto now_epoch = static_cast<std::int64_t>(virtual_now());
    script_cache_.purge_expired(now_epoch);
    no_script_.purge_expired(now_epoch);
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      resources_.control_phase1(static_cast<core::resource_kind>(k), virtual_now());
    }
    lock.lock();
    if (monitor_cv_.wait_for(lock, timeout, [this] { return monitor_stop_; })) return;
    lock.unlock();
    for (std::size_t k = 0; k < core::resource_kind_count; ++k) {
      const core::control_outcome outcome =
          resources_.control_phase2(static_cast<core::resource_kind>(k), virtual_now());
      if (!outcome.terminated_site.empty()) {
        NAKIKA_LOG(info, "monitor")
            << "terminated pipelines of " << outcome.terminated_site;
      }
    }
    lock.lock();
  }
}

}  // namespace nakika::proxy
