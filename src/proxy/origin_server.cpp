#include "proxy/origin_server.hpp"

#include "http/date.hpp"
#include "util/strings.hpp"

namespace nakika::proxy {

origin_server::origin_server(sim::network& net, sim::node_id host)
    : net_(net), host_(host) {}

void origin_server::add_static(const std::string& host_name, const std::string& path,
                               std::string_view content_type, util::shared_body body,
                               std::int64_t max_age_seconds) {
  sites_[util::to_lower(host_name)].statics[path] = {std::string(content_type),
                                                     std::move(body), max_age_seconds};
}

void origin_server::add_static_text(const std::string& host_name, const std::string& path,
                                    std::string_view content_type, std::string_view text,
                                    std::int64_t max_age_seconds) {
  add_static(host_name, path, content_type, util::make_body(text), max_age_seconds);
}

void origin_server::add_dynamic(const std::string& host_name, const std::string& path_prefix,
                                dynamic_handler handler) {
  sites_[util::to_lower(host_name)].dynamics.emplace_back(path_prefix, std::move(handler));
}

http::response origin_server::build_response(const http::request& r, double* cpu_seconds) {
  if (cpu_seconds != nullptr) *cpu_seconds = base_cpu_seconds_;
  const auto site_it = sites_.find(util::to_lower(r.url.host()));
  if (site_it == sites_.end()) {
    return http::make_error_response(404, "no such site: " + r.url.host());
  }
  const site& s = site_it->second;

  // Longest-prefix dynamic handlers win over statics so a site can overlay
  // dynamic sections on static trees.
  const std::pair<std::string, dynamic_handler>* best = nullptr;
  for (const auto& d : s.dynamics) {
    if (r.url.path().starts_with(d.first) &&
        (best == nullptr || d.first.size() > best->first.size())) {
      best = &d;
    }
  }
  if (best != nullptr) {
    dynamic_result out = best->second(r);
    if (cpu_seconds != nullptr) *cpu_seconds = base_cpu_seconds_ + out.cpu_seconds;
    return std::move(out.response);
  }

  const auto static_it = s.statics.find(r.url.path());
  if (static_it == s.statics.end()) {
    return http::make_error_response(404, "no such resource: " + r.url.path());
  }
  const static_entry& e = static_it->second;
  http::response resp = http::make_response(200, e.content_type, e.body);
  const auto now = static_cast<std::int64_t>(net_.loop().now());
  resp.headers.set("Date", http::format_http_date(now));
  resp.headers.set("Cache-Control", "max-age=" + std::to_string(e.max_age));
  if (r.method == http::method::head) resp.body = nullptr;
  return resp;
}

void origin_server::handle(const http::request& r, std::function<void(http::response)> done) {
  double cpu = 0.0;
  http::response resp = build_response(r, &cpu);
  served_.fetch_add(1, std::memory_order_relaxed);
  net_.run_cpu(host_, cpu, [done = std::move(done), resp = std::move(resp)]() mutable {
    done(std::move(resp));
  });
}

std::optional<http::response> origin_server::serve_now(const http::request& r,
                                                       double* cpu_seconds) {
  served_.fetch_add(1, std::memory_order_relaxed);
  return build_response(r, cpu_seconds);
}

}  // namespace nakika::proxy
