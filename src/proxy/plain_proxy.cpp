#include "proxy/plain_proxy.hpp"

#include "http/wire.hpp"

namespace nakika::proxy {

void forward_request(sim::network& net, sim::node_id from, http_endpoint& target,
                     const http::request& r, std::function<void(http::response)> done) {
  net.transfer(from, target.host(), http::wire_size(r), [&net, from, &target, r,
                                                         done = std::move(done)]() mutable {
    target.handle(r, [&net, from, target_host = target.host(),
                      done = std::move(done)](http::response resp) mutable {
      const std::size_t bytes = http::wire_size(resp);
      net.transfer(target_host, from, bytes,
                   [done = std::move(done), resp = std::move(resp)]() mutable {
                     done(std::move(resp));
                   });
    });
  });
}

plain_proxy::plain_proxy(sim::network& net, sim::node_id host,
                         endpoint_resolver resolve_origin, core::cost_model costs)
    : net_(net),
      host_(host),
      resolve_origin_(std::move(resolve_origin)),
      costs_(costs) {}

void plain_proxy::handle(const http::request& r, std::function<void(http::response)> done) {
  const auto now = static_cast<std::int64_t>(net_.loop().now());
  const std::string key = r.url.str();

  if (auto hit = cache_.get(key, now)) {
    net_.run_cpu(host_, costs_.proxy_overhead + costs_.cache_hit_serve,
                 [done = std::move(done), resp = std::move(*hit)]() mutable {
                   done(std::move(resp));
                 });
    return;
  }

  http_endpoint* origin = resolve_origin_(r.url.host());
  if (origin == nullptr) {
    net_.run_cpu(host_, costs_.proxy_overhead, [done = std::move(done), &r]() mutable {
      done(http::make_error_response(502, "cannot resolve " + r.url.host()));
    });
    return;
  }

  net_.run_cpu(host_, costs_.proxy_overhead, [this, r, origin, key,
                                              done = std::move(done)]() mutable {
    forward_request(net_, host_, *origin, r, [this, key, done = std::move(done)](
                                                 http::response resp) mutable {
      const auto later = static_cast<std::int64_t>(net_.loop().now());
      cache_.put(key, resp, later);
      done(std::move(resp));
    });
  });
}

}  // namespace nakika::proxy
