// Deployment wiring: owns origin servers, Na Kika nodes, the overlay, and
// DNS redirection for one simulated experiment. Keeps benches and examples
// short — build a topology, add origins and nodes, go.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_injection.hpp"
#include "overlay/clusters.hpp"
#include "overlay/redirector.hpp"
#include "proxy/nakika_node.hpp"
#include "proxy/origin_server.hpp"
#include "proxy/plain_proxy.hpp"

namespace nakika::proxy {

class deployment {
 public:
  explicit deployment(sim::network& net);

  // Creates an origin server on `host`. Host names are mapped to it with
  // map_host (one origin can serve many sites).
  origin_server& create_origin(sim::node_id host);
  void map_host(const std::string& host_name, origin_server& server);

  // Creates a Na Kika node; it joins the overlay automatically when
  // enable_overlay was called.
  nakika_node& create_node(sim::node_id host, node_config cfg = {});
  // Baseline proxy for comparisons.
  plain_proxy& create_plain_proxy(sim::node_id host, core::cost_model costs = {});

  // Turns on cooperative caching; nodes created before and after all join.
  void enable_overlay(overlay::cluster_config cfg = {});

  [[nodiscard]] endpoint_resolver origin_resolver();
  [[nodiscard]] overlay::dns_redirector& redirector() { return redirector_; }

  // Picks a nearby node for a client (DNS redirection) — nullptr if none.
  [[nodiscard]] nakika_node* pick_node(sim::node_id client, util::rng& rng);

  [[nodiscard]] std::vector<std::unique_ptr<nakika_node>>& nodes() { return nodes_; }
  [[nodiscard]] nakika_node* node_by_name(const std::string& name);
  [[nodiscard]] sim::network& net() { return net_; }

  // --- churn fault injection (thread-safe; callable mid-workload) --------------
  // Crashes a node: its overlay member leaves every ring (stored keys dropped,
  // its advertised values dangle and are filtered from lookups), the peer
  // directory stops resolving it, and the DNS redirector fails clients over
  // to the surviving nodes. The node object itself stays alive — the caller
  // decides whether to also clear its caches (a real crash loses them).
  void fail_node(nakika_node& node);
  // Brings a crashed node back: resolvable and redirector-visible again,
  // alive in every ring with empty stores (state died with the process).
  void recover_node(nakika_node& node);
  [[nodiscard]] bool node_failed(const nakika_node& node) const;
  [[nodiscard]] net::fault_injector& faults() { return faults_; }
  // The overlay-advertised name of a node ("nakika-<host>").
  [[nodiscard]] std::string node_name_of(const nakika_node& node) const;

 private:
  void join_overlay(nakika_node& node);

  sim::network& net_;
  std::vector<std::unique_ptr<origin_server>> origins_;
  std::map<std::string, origin_server*> host_map_;
  std::vector<std::unique_ptr<nakika_node>> nodes_;
  std::map<std::string, nakika_node*> nodes_by_name_;
  std::vector<std::unique_ptr<plain_proxy>> plain_proxies_;
  std::unique_ptr<overlay::coral_overlay> overlay_;
  // Overlay member ids by node name, filled at join time (setup; frozen while
  // serving, like nodes_by_name_).
  std::map<std::string, overlay::coral_overlay::member_id> overlay_members_;
  overlay::dns_redirector redirector_;
  net::fault_injector faults_;
};

}  // namespace nakika::proxy
