// Deployment wiring: owns origin servers, Na Kika nodes, the overlay, and
// DNS redirection for one simulated experiment. Keeps benches and examples
// short — build a topology, add origins and nodes, go.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "overlay/clusters.hpp"
#include "overlay/redirector.hpp"
#include "proxy/nakika_node.hpp"
#include "proxy/origin_server.hpp"
#include "proxy/plain_proxy.hpp"

namespace nakika::proxy {

class deployment {
 public:
  explicit deployment(sim::network& net);

  // Creates an origin server on `host`. Host names are mapped to it with
  // map_host (one origin can serve many sites).
  origin_server& create_origin(sim::node_id host);
  void map_host(const std::string& host_name, origin_server& server);

  // Creates a Na Kika node; it joins the overlay automatically when
  // enable_overlay was called.
  nakika_node& create_node(sim::node_id host, node_config cfg = {});
  // Baseline proxy for comparisons.
  plain_proxy& create_plain_proxy(sim::node_id host, core::cost_model costs = {});

  // Turns on cooperative caching; nodes created before and after all join.
  void enable_overlay(overlay::cluster_config cfg = {});

  [[nodiscard]] endpoint_resolver origin_resolver();
  [[nodiscard]] overlay::dns_redirector& redirector() { return redirector_; }

  // Picks a nearby node for a client (DNS redirection) — nullptr if none.
  [[nodiscard]] nakika_node* pick_node(sim::node_id client, util::rng& rng);

  [[nodiscard]] std::vector<std::unique_ptr<nakika_node>>& nodes() { return nodes_; }
  [[nodiscard]] nakika_node* node_by_name(const std::string& name);
  [[nodiscard]] sim::network& net() { return net_; }

 private:
  void join_overlay(nakika_node& node);

  sim::network& net_;
  std::vector<std::unique_ptr<origin_server>> origins_;
  std::map<std::string, origin_server*> host_map_;
  std::vector<std::unique_ptr<nakika_node>> nodes_;
  std::map<std::string, nakika_node*> nodes_by_name_;
  std::vector<std::unique_ptr<plain_proxy>> plain_proxies_;
  std::unique_ptr<overlay::coral_overlay> overlay_;
  overlay::dns_redirector redirector_;
};

}  // namespace nakika::proxy
