#include "proxy/deployment.hpp"

#include "net/peer_transport.hpp"
#include "util/strings.hpp"

namespace nakika::proxy {

deployment::deployment(sim::network& net) : net_(net), redirector_(net) {}

origin_server& deployment::create_origin(sim::node_id host) {
  origins_.push_back(std::make_unique<origin_server>(net_, host));
  return *origins_.back();
}

void deployment::map_host(const std::string& host_name, origin_server& server) {
  host_map_[util::to_lower(host_name)] = &server;
}

endpoint_resolver deployment::origin_resolver() {
  return [this](const std::string& host) -> http_endpoint* {
    const auto it = host_map_.find(util::to_lower(host));
    return it == host_map_.end() ? nullptr : it->second;
  };
}

nakika_node& deployment::create_node(sim::node_id host, node_config cfg) {
  auto node = std::make_unique<nakika_node>(net_, host, origin_resolver(), std::move(cfg));
  nakika_node& ref = *node;
  const std::string name = "nakika-" + net_.node_name(host);
  nodes_by_name_[name] = &ref;
  nodes_.push_back(std::move(node));
  redirector_.add_proxy(host);
  if (overlay_ != nullptr) join_overlay(ref);
  return ref;
}

plain_proxy& deployment::create_plain_proxy(sim::node_id host, core::cost_model costs) {
  plain_proxies_.push_back(
      std::make_unique<plain_proxy>(net_, host, origin_resolver(), costs));
  return *plain_proxies_.back();
}

void deployment::enable_overlay(overlay::cluster_config cfg) {
  if (overlay_ != nullptr) return;
  overlay_ = std::make_unique<overlay::coral_overlay>(net_, std::move(cfg));
  for (auto& node : nodes_) join_overlay(*node);
}

void deployment::join_overlay(nakika_node& node) {
  const std::string name = "nakika-" + net_.node_name(node.host());
  const auto member = overlay_->join(node.host(), name);
  overlay_members_[name] = member;
  // Peer-name resolution reads nodes_by_name_, which is frozen once every
  // node is created — create all nodes before worker-mode serving starts.
  // Crashed nodes resolve to nothing, so a stale overlay hint for a dead
  // peer falls through to the next holder or the origin.
  net::peer_directory peers = [this](const std::string& peer) -> net::peer_endpoint* {
    if (faults_.crashed(peer)) return nullptr;
    return node_by_name(peer);
  };
  if (node.using_workers()) {
    // Worker-mode nodes run concurrently, so peer lookups and fetches go
    // through the thread-safe transport (synchronous DHT walk + direct
    // cross-thread cache probes) instead of the single-threaded event loop.
    nakika_node* self = &node;
    node.attach_peer_transport(std::make_unique<net::threaded_peer_transport>(
        net_, *overlay_, member, name, std::move(peers), node.host(),
        [self] { return static_cast<std::int64_t>(self->virtual_now()); }, &faults_));
  } else {
    node.attach_peer_transport(std::make_unique<net::sim_peer_transport>(
        net_, *overlay_, member, name, std::move(peers), node.host(),
        node.config().costs.cache_hit_serve));
  }
}

std::string deployment::node_name_of(const nakika_node& node) const {
  return "nakika-" + net_.node_name(node.host());
}

void deployment::fail_node(nakika_node& node) {
  const std::string name = node_name_of(node);
  faults_.crash(name);
  if (overlay_ != nullptr) {
    const auto it = overlay_members_.find(name);
    if (it != overlay_members_.end()) overlay_->crash_member(it->second);
  }
  redirector_.remove_proxy(node.host());
}

void deployment::recover_node(nakika_node& node) {
  const std::string name = node_name_of(node);
  if (!faults_.crashed(name)) return;
  faults_.revive(name);
  if (overlay_ != nullptr) {
    const auto it = overlay_members_.find(name);
    if (it != overlay_members_.end()) overlay_->revive_member(it->second);
  }
  redirector_.add_proxy(node.host());
}

bool deployment::node_failed(const nakika_node& node) const {
  return faults_.crashed(node_name_of(node));
}

nakika_node* deployment::node_by_name(const std::string& name) {
  const auto it = nodes_by_name_.find(name);
  return it == nodes_by_name_.end() ? nullptr : it->second;
}

nakika_node* deployment::pick_node(sim::node_id client, util::rng& rng) {
  if (nodes_.empty()) return nullptr;
  try {
    const sim::node_id host = redirector_.pick(client, rng);
    for (auto& node : nodes_) {
      if (node->host() == host) return node.get();
    }
  } catch (const std::logic_error&) {
    return nullptr;
  }
  return nullptr;
}

}  // namespace nakika::proxy
