// Origin servers and the endpoint abstraction. An endpoint is anything that
// accepts an HTTP request on a simulated host: origin servers, the plain
// proxy baseline, and Na Kika nodes all implement it, so clients and proxies
// compose freely.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "sim/network.hpp"

namespace nakika::proxy {

class http_endpoint {
 public:
  virtual ~http_endpoint() = default;
  // Processes a request that has already arrived at this endpoint's host;
  // `done` fires (in virtual time) when the response is ready to transmit.
  virtual void handle(const http::request& r, std::function<void(http::response)> done) = 0;
  [[nodiscard]] virtual sim::node_id host() const = 0;
};

// Maps a URL host to the endpoint serving it (the simulator's DNS).
using endpoint_resolver = std::function<http_endpoint*(const std::string& host)>;

// A simulated origin server hosting one or more sites. Content is either
// static bodies (with caching headers) or dynamic handlers with an explicit
// CPU cost, which is how the SIMM/Tomcat and PHP/SPECweb models plug in.
class origin_server : public http_endpoint {
 public:
  origin_server(sim::network& net, sim::node_id host);

  // Static resource with a freshness lifetime. Path must be absolute.
  void add_static(const std::string& host_name, const std::string& path,
                  std::string_view content_type, util::shared_body body,
                  std::int64_t max_age_seconds = 3600);
  // Convenience: text content.
  void add_static_text(const std::string& host_name, const std::string& path,
                       std::string_view content_type, std::string_view text,
                       std::int64_t max_age_seconds = 3600);

  struct dynamic_result {
    http::response response;
    double cpu_seconds = 0.0;  // added to the fixed per-request cost
  };
  using dynamic_handler = std::function<dynamic_result(const http::request&)>;
  // Dynamic resource rooted at a path prefix.
  void add_dynamic(const std::string& host_name, const std::string& path_prefix,
                   dynamic_handler handler);

  // Fixed CPU cost per served request (request parsing, I/O).
  void set_base_cpu_seconds(double s) { base_cpu_seconds_ = s; }

  void handle(const http::request& r, std::function<void(http::response)> done) override;
  [[nodiscard]] sim::node_id host() const override { return host_; }

  // Synchronous variant for script subrequests (Fetch vocabulary) and the
  // multi-worker node's direct fetch path. Safe to call from any thread once
  // the site map is built (content registration is setup-time only).
  [[nodiscard]] std::optional<http::response> serve_now(const http::request& r,
                                                        double* cpu_seconds = nullptr);

  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  struct static_entry {
    std::string content_type;
    util::shared_body body;
    std::int64_t max_age;
  };
  struct site {
    std::map<std::string, static_entry> statics;                  // by exact path
    std::vector<std::pair<std::string, dynamic_handler>> dynamics;  // by prefix
  };

  [[nodiscard]] http::response build_response(const http::request& r, double* cpu_seconds);

  sim::network& net_;
  sim::node_id host_;
  double base_cpu_seconds_ = 0.0029;  // paper: 2.9 ms to load the page
  std::map<std::string, site> sites_;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace nakika::proxy
