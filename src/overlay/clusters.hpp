// Coral-style hierarchical clusters: three levels with RTT diameters
// (~30 ms, ~100 ms, global). A node belongs to one cluster per level; gets
// prefer the smallest-diameter ring and fall back outward, so content is
// found nearby when possible.
//
// Mirrors sloppy_dht's two access paths: the event-driven put/get drive the
// deterministic sim loop; put_now/get_now run the same level walk inline for
// concurrent worker threads. The sync path reads membership (which rings a
// member belongs to) from an epoch-protected snapshot rebuilt only after a
// join — the single structural mutator — so steady-state reads take no
// membership mutex; each cluster's ring state is likewise snapshot-read
// inside sloppy_dht.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "overlay/dht.hpp"

namespace nakika::overlay {

struct cluster_config {
  // One-way latency thresholds per level, seconds. Level 0 is global
  // (infinite); the last entry is the tightest cluster.
  std::vector<double> level_thresholds = {1e9, 0.050, 0.015};
  dht_config dht;
};

class coral_overlay {
 public:
  coral_overlay(sim::network& net, cluster_config config = {});
  ~coral_overlay();

  using member_id = std::size_t;

  // Joins the overlay: the node is greedily assigned to the nearest existing
  // cluster within each level's threshold (or founds a new one).
  member_id join(sim::node_id host, const std::string& name);

  // --- event-driven API (single-threaded sim path) -----------------------------

  // Stores in every level's ring (Coral inserts at each level).
  void put(member_id m, const std::string& key, const std::string& value,
           std::int64_t expires_at, std::function<void()> done);

  // Looks up level-by-level, tightest first; `done` receives the first
  // non-empty result and the level it was found at (-1 when absent).
  void get(member_id m, const std::string& key,
           std::function<void(std::vector<std::string>, int level)> done);

  // --- synchronous API (thread-safe, for worker-mode transports) ---------------

  struct sync_result {
    std::vector<std::string> values;
    int level = -1;  // level the values were found at, -1 when absent
    int hops = 0;
    double latency_seconds = 0.0;  // accounted virtual cost of every ring walked
  };

  // The level walk of get (tightest ring first) performed inline; `now` is
  // the caller's epoch for TTL filtering.
  [[nodiscard]] sync_result get_now(member_id m, const std::string& key, std::int64_t now);
  // Stores in every level's ring; returns total hops walked.
  int put_now(member_id m, const std::string& key, const std::string& value,
              std::int64_t expires_at, std::int64_t now);
  // Sweeps TTL-expired values out of every ring.
  void purge_expired(std::int64_t now);

  // --- churn fault injection (thread-safe) -------------------------------------
  // Crash: the member leaves every level's ring — marked dead, stores
  // dropped, and its advertised values become dangling (filtered out of
  // lookups by each ring).
  void crash_member(member_id m);
  // Recovery: alive again in every ring with empty stores; routing repairs
  // itself as walks re-observe the member.
  void revive_member(member_id m);
  // Drops everything stored AT the member in every ring, without marking it
  // dead (models state loss alone).
  void purge_member_store(member_id m);

  [[nodiscard]] std::size_t level_count() const;
  [[nodiscard]] std::size_t cluster_count(std::size_t level) const;
  // Which cluster member `m` belongs to at `level` (for tests).
  [[nodiscard]] std::size_t cluster_of(member_id m, std::size_t level) const;

  // Membership-snapshot read accounting (mirrors sloppy_dht's counters):
  // fastpath = rings resolved without the membership mutex.
  [[nodiscard]] std::uint64_t read_fastpath() const {
    return read_fastpath_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t read_slowpath() const {
    return read_slowpath_.load(std::memory_order_relaxed);
  }
  // Aggregated ring-level read counters across every cluster at every level.
  [[nodiscard]] std::uint64_t ring_read_fastpath() const;
  [[nodiscard]] std::uint64_t ring_read_slowpath() const;

 private:
  struct level {
    double threshold;
    // Each cluster is its own sloppy ring.
    std::vector<std::unique_ptr<sloppy_dht>> clusters;
    // Cluster "centers" for greedy assignment: host of the founding member.
    std::vector<sim::node_id> centers;
  };
  struct member {
    sim::node_id host;
    std::string name;
    // Per level: cluster index and member id within that cluster's ring.
    std::vector<std::pair<std::size_t, sloppy_dht::member_id>> rings;
  };

  // Immutable membership map published to sync-path readers: per member,
  // the (ring, member-id) pair at every level. Ring pointers are stable for
  // the overlay's lifetime (clusters are never destroyed), so the copy a
  // reader takes stays valid after the epoch guard drops.
  struct overlay_snapshot {
    std::uint64_t version = 0;
    std::vector<std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>>> rings;
  };

  void get_from_level(member_id m, std::size_t level_index, const std::string& key,
                      std::shared_ptr<std::function<void(std::vector<std::string>, int)>> done);
  // A member's (ring, member-id) pairs per level, from the published
  // snapshot when fresh (no membership mutex), rebuilt under it otherwise.
  [[nodiscard]] std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>> rings_of(
      member_id m) const;
  const overlay_snapshot* refresh_snapshot_locked() const;

  sim::network& net_;
  cluster_config config_;
  mutable std::mutex mu_;      // guards levels_/members_ membership
  std::vector<level> levels_;  // index 0 = global
  std::vector<member> members_;

  mutable std::atomic<const overlay_snapshot*> snap_{nullptr};
  std::atomic<std::uint64_t> version_{1};
  mutable std::atomic<std::uint64_t> read_fastpath_{0};
  mutable std::atomic<std::uint64_t> read_slowpath_{0};
};

}  // namespace nakika::overlay
