// Kademlia-style k-bucket routing table. Buckets are indexed by the position
// of the highest differing bit between the owner and the contact.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "overlay/node_id.hpp"

namespace nakika::overlay {

// A routing contact: overlay identity plus the simulated host that runs it.
struct contact {
  node_id id;
  std::uint32_t host = 0;  // sim::node_id

  bool operator==(const contact& other) const { return id == other.id; }
};

class routing_table {
 public:
  // `k` is the bucket capacity (Kademlia's k).
  routing_table(const node_id& owner, std::size_t k = 8);

  // Inserts or refreshes a contact (LRU within its bucket). The owner itself
  // is never inserted. Returns false when the bucket was full and the contact
  // was dropped (no liveness probing in the simulator).
  bool observe(const contact& c);

  // Up to `count` known contacts closest to `target`, closest first.
  [[nodiscard]] std::vector<contact> closest(const node_id& target, std::size_t count) const;

  // Every known contact, bucket order (for flattening into read-only ring
  // snapshots — see sloppy_dht's lock-free get_now).
  [[nodiscard]] std::vector<contact> all_contacts() const;

  bool remove(const node_id& id);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bucket_capacity() const { return k_; }

 private:
  node_id owner_;
  std::size_t k_;
  std::array<std::vector<contact>, node_id::bits> buckets_;  // front = LRU-oldest
};

}  // namespace nakika::overlay
