#include "overlay/clusters.hpp"

#include <stdexcept>

namespace nakika::overlay {

coral_overlay::coral_overlay(sim::network& net, cluster_config config)
    : net_(net), config_(std::move(config)) {
  if (config_.level_thresholds.empty()) {
    throw std::invalid_argument("coral_overlay: need at least one level");
  }
  for (double threshold : config_.level_thresholds) {
    level l;
    l.threshold = threshold;
    levels_.push_back(std::move(l));
  }
}

coral_overlay::member_id coral_overlay::join(sim::node_id host, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  member m;
  m.host = host;
  m.name = name;

  for (auto& lvl : levels_) {
    // Greedy cluster assignment: join the first cluster whose center is
    // within the level's RTT threshold, else found a new cluster.
    std::size_t chosen = lvl.clusters.size();
    for (std::size_t c = 0; c < lvl.clusters.size(); ++c) {
      if (net_.has_route(host, lvl.centers[c]) &&
          net_.route_latency(host, lvl.centers[c]) <= lvl.threshold) {
        chosen = c;
        break;
      }
    }
    if (chosen == lvl.clusters.size()) {
      lvl.clusters.push_back(std::make_unique<sloppy_dht>(net_, config_.dht));
      lvl.centers.push_back(host);
    }
    const sloppy_dht::member_id rid = lvl.clusters[chosen]->join(host, name);
    m.rings.emplace_back(chosen, rid);
  }
  members_.push_back(std::move(m));
  return members_.size() - 1;
}

std::size_t coral_overlay::level_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return levels_.size();
}

std::size_t coral_overlay::cluster_count(std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return levels_[level].clusters.size();
}

std::size_t coral_overlay::cluster_of(member_id m, std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay: bad member");
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return members_[m].rings[level].first;
}

std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>> coral_overlay::rings_of(
    member_id m) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay: bad member");
  std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>> out;
  out.reserve(members_[m].rings.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto [cluster, rid] = members_[m].rings[l];
    out.emplace_back(levels_[l].clusters[cluster].get(), rid);
  }
  return out;
}

// ----- event-driven path (single-threaded sim) ---------------------------------

void coral_overlay::put(member_id m, const std::string& key, const std::string& value,
                        std::int64_t expires_at, std::function<void()> done) {
  const auto rings = rings_of(m);
  auto remaining = std::make_shared<std::size_t>(rings.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const auto& [ring, rid] : rings) {
    ring->put(rid, key, value, expires_at, [remaining, shared_done](int) {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

void coral_overlay::get(member_id m, const std::string& key,
                        std::function<void(std::vector<std::string>, int)> done) {
  std::size_t top = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (m >= members_.size()) throw std::invalid_argument("coral_overlay::get: bad member");
    top = levels_.size() - 1;
  }
  auto shared =
      std::make_shared<std::function<void(std::vector<std::string>, int)>>(std::move(done));
  // Start at the tightest level (highest index) and fall outward to global.
  get_from_level(m, top, key, shared);
}

void coral_overlay::get_from_level(
    member_id m, std::size_t level_index, const std::string& key,
    std::shared_ptr<std::function<void(std::vector<std::string>, int)>> done) {
  sloppy_dht* ring = nullptr;
  sloppy_dht::member_id rid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [cluster, r] = members_[m].rings[level_index];
    ring = levels_[level_index].clusters[cluster].get();
    rid = r;
  }
  ring->get(rid, key,
            [this, m, level_index, key, done](std::vector<std::string> values, int) {
              if (!values.empty()) {
                (*done)(std::move(values), static_cast<int>(level_index));
                return;
              }
              if (level_index == 0) {
                (*done)({}, -1);
                return;
              }
              get_from_level(m, level_index - 1, key, done);
            });
}

// ----- synchronous path (thread-safe) ------------------------------------------

coral_overlay::sync_result coral_overlay::get_now(member_id m, const std::string& key,
                                                  std::int64_t now) {
  const auto rings = rings_of(m);
  sync_result out;
  // Tightest ring first, falling outward — same order as the async walk.
  for (std::size_t l = rings.size(); l-- > 0;) {
    sloppy_dht::sync_result r = rings[l].first->get_now(rings[l].second, key, now);
    out.hops += r.hops;
    out.latency_seconds += r.latency_seconds;
    if (!r.values.empty()) {
      out.values = std::move(r.values);
      out.level = static_cast<int>(l);
      return out;
    }
  }
  return out;
}

int coral_overlay::put_now(member_id m, const std::string& key, const std::string& value,
                           std::int64_t expires_at, std::int64_t now) {
  const auto rings = rings_of(m);
  int hops = 0;
  for (const auto& [ring, rid] : rings) {
    hops += ring->put_now(rid, key, value, expires_at, now);
  }
  return hops;
}

void coral_overlay::crash_member(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->leave(rid);
}

void coral_overlay::revive_member(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->revive(rid);
}

void coral_overlay::purge_member_store(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->purge_store(rid);
}

void coral_overlay::purge_expired(std::int64_t now) {
  std::vector<sloppy_dht*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& lvl : levels_) {
      for (auto& c : lvl.clusters) rings.push_back(c.get());
    }
  }
  for (sloppy_dht* ring : rings) ring->purge_expired(now);
}

}  // namespace nakika::overlay
