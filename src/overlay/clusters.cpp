#include "overlay/clusters.hpp"

#include <stdexcept>

namespace nakika::overlay {

coral_overlay::coral_overlay(sim::network& net, cluster_config config)
    : net_(net), config_(std::move(config)) {
  if (config_.level_thresholds.empty()) {
    throw std::invalid_argument("coral_overlay: need at least one level");
  }
  for (double threshold : config_.level_thresholds) {
    level l;
    l.threshold = threshold;
    levels_.push_back(std::move(l));
  }
}

coral_overlay::~coral_overlay() {
  const overlay_snapshot* cur = snap_.exchange(nullptr, std::memory_order_acq_rel);
  auto& domain = util::ebr_domain::instance();
  if (cur != nullptr) {
    domain.retire(const_cast<overlay_snapshot*>(cur),
                  [](void* p) { delete static_cast<overlay_snapshot*>(p); });
  }
  domain.flush();
}

coral_overlay::member_id coral_overlay::join(sim::node_id host, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  member m;
  m.host = host;
  m.name = name;

  for (auto& lvl : levels_) {
    // Greedy cluster assignment: join the first cluster whose center is
    // within the level's RTT threshold, else found a new cluster.
    std::size_t chosen = lvl.clusters.size();
    for (std::size_t c = 0; c < lvl.clusters.size(); ++c) {
      if (net_.has_route(host, lvl.centers[c]) &&
          net_.route_latency(host, lvl.centers[c]) <= lvl.threshold) {
        chosen = c;
        break;
      }
    }
    if (chosen == lvl.clusters.size()) {
      lvl.clusters.push_back(std::make_unique<sloppy_dht>(net_, config_.dht));
      lvl.centers.push_back(host);
    }
    const sloppy_dht::member_id rid = lvl.clusters[chosen]->join(host, name);
    m.rings.emplace_back(chosen, rid);
  }
  members_.push_back(std::move(m));
  // join is the only structural mutator: bump the version so sync-path
  // readers rebuild the membership snapshot.
  version_.fetch_add(1, std::memory_order_release);
  return members_.size() - 1;
}

std::size_t coral_overlay::level_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return levels_.size();
}

std::size_t coral_overlay::cluster_count(std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return levels_[level].clusters.size();
}

std::size_t coral_overlay::cluster_of(member_id m, std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay: bad member");
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return members_[m].rings[level].first;
}

const coral_overlay::overlay_snapshot* coral_overlay::refresh_snapshot_locked() const {
  const overlay_snapshot* cur = snap_.load(std::memory_order_acquire);
  const std::uint64_t v = version_.load(std::memory_order_acquire);
  if (cur != nullptr && cur->version == v && cur->rings.size() == members_.size()) {
    return cur;  // another reader rebuilt while we waited on mu_
  }
  auto* fresh = new overlay_snapshot;
  fresh->version = v;
  fresh->rings.reserve(members_.size());
  for (const auto& m : members_) {
    std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>> rings;
    rings.reserve(m.rings.size());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const auto [cluster, rid] = m.rings[l];
      rings.emplace_back(levels_[l].clusters[cluster].get(), rid);
    }
    fresh->rings.push_back(std::move(rings));
  }
  const overlay_snapshot* old = snap_.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) {
    util::ebr_domain::instance().retire(
        const_cast<overlay_snapshot*>(old),
        [](void* p) { delete static_cast<overlay_snapshot*>(p); });
  }
  return fresh;
}

std::vector<std::pair<sloppy_dht*, sloppy_dht::member_id>> coral_overlay::rings_of(
    member_id m) const {
  util::ebr_domain::guard g;
  const overlay_snapshot* snap = snap_.load(std::memory_order_acquire);
  if (snap == nullptr || snap->version != version_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      snap = refresh_snapshot_locked();
    }
    read_slowpath_.fetch_add(1, std::memory_order_relaxed);
  } else {
    read_fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
  if (m >= snap->rings.size()) throw std::invalid_argument("coral_overlay: bad member");
  return snap->rings[m];  // copy; ring pointers are stable for our lifetime
}

std::uint64_t coral_overlay::ring_read_fastpath() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& lvl : levels_) {
    for (const auto& c : lvl.clusters) total += c->read_fastpath();
  }
  return total;
}

std::uint64_t coral_overlay::ring_read_slowpath() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& lvl : levels_) {
    for (const auto& c : lvl.clusters) total += c->read_slowpath();
  }
  return total;
}

// ----- event-driven path (single-threaded sim) ---------------------------------

void coral_overlay::put(member_id m, const std::string& key, const std::string& value,
                        std::int64_t expires_at, std::function<void()> done) {
  const auto rings = rings_of(m);
  auto remaining = std::make_shared<std::size_t>(rings.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const auto& [ring, rid] : rings) {
    ring->put(rid, key, value, expires_at, [remaining, shared_done](int) {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

void coral_overlay::get(member_id m, const std::string& key,
                        std::function<void(std::vector<std::string>, int)> done) {
  std::size_t top = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (m >= members_.size()) throw std::invalid_argument("coral_overlay::get: bad member");
    top = levels_.size() - 1;
  }
  auto shared =
      std::make_shared<std::function<void(std::vector<std::string>, int)>>(std::move(done));
  // Start at the tightest level (highest index) and fall outward to global.
  get_from_level(m, top, key, shared);
}

void coral_overlay::get_from_level(
    member_id m, std::size_t level_index, const std::string& key,
    std::shared_ptr<std::function<void(std::vector<std::string>, int)>> done) {
  sloppy_dht* ring = nullptr;
  sloppy_dht::member_id rid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [cluster, r] = members_[m].rings[level_index];
    ring = levels_[level_index].clusters[cluster].get();
    rid = r;
  }
  ring->get(rid, key,
            [this, m, level_index, key, done](std::vector<std::string> values, int) {
              if (!values.empty()) {
                (*done)(std::move(values), static_cast<int>(level_index));
                return;
              }
              if (level_index == 0) {
                (*done)({}, -1);
                return;
              }
              get_from_level(m, level_index - 1, key, done);
            });
}

// ----- synchronous path (thread-safe) ------------------------------------------

coral_overlay::sync_result coral_overlay::get_now(member_id m, const std::string& key,
                                                  std::int64_t now) {
  const auto rings = rings_of(m);
  sync_result out;
  // Tightest ring first, falling outward — same order as the async walk.
  for (std::size_t l = rings.size(); l-- > 0;) {
    sloppy_dht::sync_result r = rings[l].first->get_now(rings[l].second, key, now);
    out.hops += r.hops;
    out.latency_seconds += r.latency_seconds;
    if (!r.values.empty()) {
      out.values = std::move(r.values);
      out.level = static_cast<int>(l);
      return out;
    }
  }
  return out;
}

int coral_overlay::put_now(member_id m, const std::string& key, const std::string& value,
                           std::int64_t expires_at, std::int64_t now) {
  const auto rings = rings_of(m);
  int hops = 0;
  for (const auto& [ring, rid] : rings) {
    hops += ring->put_now(rid, key, value, expires_at, now);
  }
  return hops;
}

void coral_overlay::crash_member(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->leave(rid);
}

void coral_overlay::revive_member(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->revive(rid);
}

void coral_overlay::purge_member_store(member_id m) {
  for (const auto& [ring, rid] : rings_of(m)) ring->purge_store(rid);
}

void coral_overlay::purge_expired(std::int64_t now) {
  std::vector<sloppy_dht*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& lvl : levels_) {
      for (auto& c : lvl.clusters) rings.push_back(c.get());
    }
  }
  for (sloppy_dht* ring : rings) ring->purge_expired(now);
}

}  // namespace nakika::overlay
