#include "overlay/clusters.hpp"

#include <stdexcept>

namespace nakika::overlay {

coral_overlay::coral_overlay(sim::network& net, cluster_config config)
    : net_(net), config_(std::move(config)) {
  if (config_.level_thresholds.empty()) {
    throw std::invalid_argument("coral_overlay: need at least one level");
  }
  for (double threshold : config_.level_thresholds) {
    level l;
    l.threshold = threshold;
    levels_.push_back(std::move(l));
  }
}

coral_overlay::member_id coral_overlay::join(sim::node_id host, const std::string& name) {
  member m;
  m.host = host;
  m.name = name;

  for (auto& lvl : levels_) {
    // Greedy cluster assignment: join the first cluster whose center is
    // within the level's RTT threshold, else found a new cluster.
    std::size_t chosen = lvl.clusters.size();
    for (std::size_t c = 0; c < lvl.clusters.size(); ++c) {
      if (net_.has_route(host, lvl.centers[c]) &&
          net_.route_latency(host, lvl.centers[c]) <= lvl.threshold) {
        chosen = c;
        break;
      }
    }
    if (chosen == lvl.clusters.size()) {
      lvl.clusters.push_back(std::make_unique<sloppy_dht>(net_, config_.dht));
      lvl.centers.push_back(host);
    }
    const sloppy_dht::member_id rid = lvl.clusters[chosen]->join(host, name);
    m.rings.emplace_back(chosen, rid);
  }
  members_.push_back(std::move(m));
  return members_.size() - 1;
}

std::size_t coral_overlay::cluster_count(std::size_t level) const {
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return levels_[level].clusters.size();
}

std::size_t coral_overlay::cluster_of(member_id m, std::size_t level) const {
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay: bad member");
  if (level >= levels_.size()) throw std::invalid_argument("coral_overlay: bad level");
  return members_[m].rings[level].first;
}

void coral_overlay::put(member_id m, const std::string& key, const std::string& value,
                        std::int64_t expires_at, std::function<void()> done) {
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay::put: bad member");
  auto remaining = std::make_shared<std::size_t>(levels_.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto [cluster, rid] = members_[m].rings[l];
    levels_[l].clusters[cluster]->put(rid, key, value, expires_at,
                                      [remaining, shared_done](int) {
                                        if (--*remaining == 0) (*shared_done)();
                                      });
  }
}

void coral_overlay::get(member_id m, const std::string& key,
                        std::function<void(std::vector<std::string>, int)> done) {
  if (m >= members_.size()) throw std::invalid_argument("coral_overlay::get: bad member");
  auto shared =
      std::make_shared<std::function<void(std::vector<std::string>, int)>>(std::move(done));
  // Start at the tightest level (highest index) and fall outward to global.
  get_from_level(m, levels_.size() - 1, key, shared);
}

void coral_overlay::get_from_level(
    member_id m, std::size_t level_index, const std::string& key,
    std::shared_ptr<std::function<void(std::vector<std::string>, int)>> done) {
  const auto [cluster, rid] = members_[m].rings[level_index];
  levels_[level_index].clusters[cluster]->get(
      rid, key,
      [this, m, level_index, key, done](std::vector<std::string> values, int) {
        if (!values.empty()) {
          (*done)(std::move(values), static_cast<int>(level_index));
          return;
        }
        if (level_index == 0) {
          (*done)({}, -1);
          return;
        }
        get_from_level(m, level_index - 1, key, done);
      });
}

}  // namespace nakika::overlay
