// DNS redirection: Na Kika appends ".nakika.net" to hostnames so its name
// servers can direct clients to nearby edge nodes (paper §3). The redirector
// picks the lowest-RTT proxy for a client, load-balancing randomly among
// proxies within a tolerance of the minimum.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/random.hpp"

namespace nakika::overlay {

class dns_redirector {
 public:
  // `tolerance` widens the near-minimum set: a proxy qualifies if its RTT is
  // within `tolerance` * min_rtt.
  dns_redirector(sim::network& net, double tolerance = 1.25);

  void add_proxy(sim::node_id proxy);
  void remove_proxy(sim::node_id proxy);

  // Chooses a nearby proxy for `client`. Throws std::logic_error when no
  // reachable proxy is registered.
  [[nodiscard]] sim::node_id pick(sim::node_id client, util::rng& rng) const;

  [[nodiscard]] std::size_t proxy_count() const { return proxies_.size(); }

 private:
  sim::network& net_;
  double tolerance_;
  std::vector<sim::node_id> proxies_;
};

// Hostname rewriting helpers ("www.med.nyu.edu" <-> "www.med.nyu.edu.nakika.net").
[[nodiscard]] std::string to_nakika_host(std::string_view origin_host);
[[nodiscard]] std::string from_nakika_host(std::string_view nakika_host);
[[nodiscard]] bool is_nakika_host(std::string_view host);

}  // namespace nakika::overlay
