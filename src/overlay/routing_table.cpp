#include "overlay/routing_table.hpp"

#include <algorithm>

namespace nakika::overlay {

routing_table::routing_table(const node_id& owner, std::size_t k) : owner_(owner), k_(k) {}

bool routing_table::observe(const contact& c) {
  const int index = owner_.bucket_index(c.id);
  if (index < 0) return false;  // self
  auto& bucket = buckets_[static_cast<std::size_t>(index)];
  const auto it = std::find(bucket.begin(), bucket.end(), c);
  if (it != bucket.end()) {
    // Refresh: move to the most-recently-seen end.
    bucket.erase(it);
    bucket.push_back(c);
    return true;
  }
  if (bucket.size() >= k_) return false;
  bucket.push_back(c);
  return true;
}

std::vector<contact> routing_table::closest(const node_id& target, std::size_t count) const {
  std::vector<contact> all;
  for (const auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(), [&](const contact& a, const contact& b) {
    return a.id.distance_to(target) < b.id.distance_to(target);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

std::vector<contact> routing_table::all_contacts() const {
  std::vector<contact> all;
  all.reserve(size());
  for (const auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

bool routing_table::remove(const node_id& id) {
  const int index = owner_.bucket_index(id);
  if (index < 0) return false;
  auto& bucket = buckets_[static_cast<std::size_t>(index)];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const contact& c) { return c.id == id; });
  if (it == bucket.end()) return false;
  bucket.erase(it);
  return true;
}

std::size_t routing_table::size() const {
  std::size_t total = 0;
  for (const auto& bucket : buckets_) total += bucket.size();
  return total;
}

}  // namespace nakika::overlay
