// Sloppy DHT ring, modeled on Coral's distributed sloppy hash table: keys
// map to multiple values (node addresses caching a URL), stores may stop
// early at intermediate nodes when the path toward the key is loaded
// ("sloppiness"), and lookups return as soon as any values are found along
// the path.
//
// Two access paths share one store:
//   - The event-driven API (put/get) drives RPCs over the simulated network,
//     so lookups cost real virtual-time hops. It is the deterministic
//     single-threaded sim path and must only be used from the event loop.
//   - The synchronous API (put_now/get_now) performs the same iterative
//     Kademlia walk inline under the ring mutex, for callers on concurrent
//     worker threads (the threaded peer transport). It never touches the
//     event loop; the virtual network cost the sim would have charged is
//     returned as accounted latency instead.
// Membership, per-member stores, and routing tables are guarded by one ring
// mutex, so concurrent put_now/get_now/purge_expired/leave are TSan-clean.
// join is setup-time only: its bootstrap self-lookup is event-driven sim
// traffic, so complete every join before concurrent serving starts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "overlay/routing_table.hpp"
#include "sim/network.hpp"

namespace nakika::overlay {

struct dht_config {
  std::size_t k = 8;                 // bucket capacity / replication set size
  std::size_t spill_threshold = 4;   // sloppy store: stop early at a node
                                     // already holding this many values
  std::size_t max_values_per_key = 8;
  double rpc_cpu_seconds = 50e-6;    // per-RPC processing cost
  std::size_t rpc_bytes = 120;       // request/response wire size
  // Amortized store hygiene: after this many stores/lookups touching one
  // member, its whole store is swept for TTL-expired values (so keys that
  // are never queried again cannot accumulate dead entries).
  std::size_t sweep_interval = 64;
};

// One logical ring. Multiple rings coexist (Coral levels / clusters).
class sloppy_dht {
 public:
  sloppy_dht(sim::network& net, dht_config config = {});

  using member_id = std::size_t;

  // Adds a member hosted on `host`, bootstrapping its routing table from the
  // existing members (iterative self-lookup, as in Kademlia join).
  member_id join(sim::node_id host, const std::string& name);
  void leave(member_id m);
  // Brings a left member back: alive again with an EMPTY store (state died
  // with the process) and re-seeded routing pointers, as if it had re-joined
  // under the same name. Thread-safe like leave.
  void revive(member_id m);
  // Drops every key stored at one member mid-run (fault injection: models
  // losing a node's DHT state without marking it dead).
  void purge_store(member_id m);

  // --- event-driven API (single-threaded sim path) -----------------------------

  // Stores `value` under `key` with an absolute expiry, starting at member
  // `via`. `done(hops)` fires when the store lands.
  void put(member_id via, const std::string& key, const std::string& value,
           std::int64_t expires_at, std::function<void(int hops)> done);

  // Looks up `key` starting at `via`; `done(values, hops)` delivers all
  // non-expired values found (empty when the key is absent).
  void get(member_id via, const std::string& key,
           std::function<void(std::vector<std::string> values, int hops)> done);

  // --- synchronous API (thread-safe, for worker-mode transports) ---------------

  struct sync_result {
    std::vector<std::string> values;
    int hops = 0;
    // Virtual latency of the walk (per-hop RTT + RPC CPU), what the sim path
    // would have billed to the event loop.
    double latency_seconds = 0.0;
  };

  // The iterative walk of get/put performed inline under the ring mutex.
  // `now` is the caller's epoch (worker mode runs on wall-clock epochs, not
  // event-loop time, so the clock is explicit here).
  [[nodiscard]] sync_result get_now(member_id via, const std::string& key,
                                    std::int64_t now);
  // Returns the hop count of the store walk.
  int put_now(member_id via, const std::string& key, const std::string& value,
              std::int64_t expires_at, std::int64_t now);

  // Sweeps every member's store, dropping TTL-expired values and empty keys.
  void purge_expired(std::int64_t now);

  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] const contact& member_contact(member_id m) const;
  // Introspection for tests: values stored at one member for a key.
  [[nodiscard]] std::vector<std::string> stored_at(member_id m, const std::string& key,
                                                   std::int64_t now) const;
  // Number of keys resident in one member's store (including any whose
  // values have expired but have not been swept yet).
  [[nodiscard]] std::size_t stored_keys(member_id m) const;
  [[nodiscard]] sim::network& net() { return net_; }

 private:
  struct stored_value {
    std::string value;
    std::int64_t expires_at;
  };
  struct member {
    bool alive = true;
    contact self;
    sim::node_id host = 0;
    std::unique_ptr<routing_table> table;
    std::map<std::string, std::vector<stored_value>> store;
    std::size_t ops_since_sweep = 0;
  };

  // Iterative lookup driving closure. alpha = 1 outstanding RPC.
  struct lookup_state;
  void lookup(member_id via, const node_id& target,
              std::function<void(std::vector<contact> path, int hops)> done);
  void lookup_step(const std::shared_ptr<lookup_state>& state);

  void rpc(member_id from, const contact& to, std::function<void(member*)> handler,
           std::function<void()> on_unreachable);

  [[nodiscard]] member* find_member(const node_id& id);
  [[nodiscard]] std::int64_t now_seconds() const;
  // Virtual cost of one RPC exchange between two hosts (RTT + CPU).
  [[nodiscard]] double rpc_cost(sim::node_id from, sim::node_id to) const;

  // Store hygiene (callers hold mu_ on the sync path; the async path runs
  // single-threaded): drop expired values of `key`, then amortized-sweep the
  // member's whole store every sweep_interval ops.
  void prune_expired(member& m, const std::string& key, std::int64_t now);
  // Values name cache-holding members; one whose member has left the ring is
  // a dangling holder. Dropped at read time so a lookup never hands a dead
  // peer back to the transport — the caller re-replicates via origin instead.
  [[nodiscard]] bool holder_is_dead(const std::string& value) const;
  void drop_dangling(member& m, const std::string& key);
  void sweep_member(member& m, std::int64_t now);
  void touch_for_sweep(member& m, std::int64_t now);
  // Sloppy insert honoring max_values_per_key: refresh a duplicate value,
  // else displace the soonest-to-expire when the per-key list is full.
  void store_value(member& m, const std::string& key, const std::string& value,
                   std::int64_t expires_at, std::int64_t now);

  // The synchronous iterative walk shared by get_now/put_now. Walks toward
  // hash(key); when `collect_values` is set, stops early at the first member
  // holding non-expired values for `key` (filling out.values). Always fills
  // `path` with the walked shortlist sorted by distance.
  void walk_now(member& via, const std::string& key, std::int64_t now,
                bool collect_values, sync_result& out, std::vector<contact>& path);

  sim::network& net_;
  dht_config config_;
  mutable std::mutex mu_;  // guards members_ (stores, routing tables, liveness)
  std::vector<member> members_;
};

}  // namespace nakika::overlay
