// Sloppy DHT ring, modeled on Coral's distributed sloppy hash table: keys
// map to multiple values (node addresses caching a URL), stores may stop
// early at intermediate nodes when the path toward the key is loaded
// ("sloppiness"), and lookups return as soon as any values are found along
// the path.
//
// Two access paths share one store:
//   - The event-driven API (put/get) drives RPCs over the simulated network,
//     so lookups cost real virtual-time hops. It is the deterministic
//     single-threaded sim path and must only be used from the event loop.
//   - The synchronous API (put_now/get_now) performs the same iterative
//     Kademlia walk inline under the ring mutex, for callers on concurrent
//     worker threads (the threaded peer transport). It never touches the
//     event loop; the virtual network cost the sim would have charged is
//     returned as accounted latency instead.
// Writers (put_now, leave/revive/purge, the event-driven path) are guarded
// by one ring mutex; get_now reads an immutable epoch-protected snapshot of
// the ring (liveness, flattened routing contacts, stores) and takes NO lock
// in steady state. Every mutation bumps a version counter; the first reader
// to observe a stale snapshot rebuilds it under the mutex (per-member
// copy-on-write — clean members share their previous immutable copy) and
// publishes it, retiring the old snapshot behind util::ebr so concurrent
// readers finish safely. join is setup-time only: its bootstrap self-lookup
// is event-driven sim traffic, so complete every join before concurrent
// serving starts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "overlay/routing_table.hpp"
#include "sim/network.hpp"
#include "util/ebr.hpp"

namespace nakika::overlay {

struct dht_config {
  std::size_t k = 8;                 // bucket capacity / replication set size
  std::size_t spill_threshold = 4;   // sloppy store: stop early at a node
                                     // already holding this many values
  std::size_t max_values_per_key = 8;
  double rpc_cpu_seconds = 50e-6;    // per-RPC processing cost
  std::size_t rpc_bytes = 120;       // request/response wire size
  // Amortized store hygiene: after this many stores/lookups touching one
  // member, its whole store is swept for TTL-expired values (so keys that
  // are never queried again cannot accumulate dead entries).
  std::size_t sweep_interval = 64;
};

// One logical ring. Multiple rings coexist (Coral levels / clusters).
class sloppy_dht {
 public:
  sloppy_dht(sim::network& net, dht_config config = {});
  ~sloppy_dht();

  using member_id = std::size_t;

  // Adds a member hosted on `host`, bootstrapping its routing table from the
  // existing members (iterative self-lookup, as in Kademlia join).
  member_id join(sim::node_id host, const std::string& name);
  void leave(member_id m);
  // Brings a left member back: alive again with an EMPTY store (state died
  // with the process) and re-seeded routing pointers, as if it had re-joined
  // under the same name. Thread-safe like leave.
  void revive(member_id m);
  // Drops every key stored at one member mid-run (fault injection: models
  // losing a node's DHT state without marking it dead).
  void purge_store(member_id m);

  // --- event-driven API (single-threaded sim path) -----------------------------

  // Stores `value` under `key` with an absolute expiry, starting at member
  // `via`. `done(hops)` fires when the store lands.
  void put(member_id via, const std::string& key, const std::string& value,
           std::int64_t expires_at, std::function<void(int hops)> done);

  // Looks up `key` starting at `via`; `done(values, hops)` delivers all
  // non-expired values found (empty when the key is absent).
  void get(member_id via, const std::string& key,
           std::function<void(std::vector<std::string> values, int hops)> done);

  // --- synchronous API (thread-safe, for worker-mode transports) ---------------

  struct sync_result {
    std::vector<std::string> values;
    int hops = 0;
    // Virtual latency of the walk (per-hop RTT + RPC CPU), what the sim path
    // would have billed to the event loop.
    double latency_seconds = 0.0;
  };

  // The iterative walk of get/put performed inline under the ring mutex.
  // `now` is the caller's epoch (worker mode runs on wall-clock epochs, not
  // event-loop time, so the clock is explicit here).
  [[nodiscard]] sync_result get_now(member_id via, const std::string& key,
                                    std::int64_t now);
  // Returns the hop count of the store walk.
  int put_now(member_id via, const std::string& key, const std::string& value,
              std::int64_t expires_at, std::int64_t now);

  // Sweeps every member's store, dropping TTL-expired values and empty keys.
  void purge_expired(std::int64_t now);

  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] const contact& member_contact(member_id m) const;
  // Introspection for tests: values stored at one member for a key.
  [[nodiscard]] std::vector<std::string> stored_at(member_id m, const std::string& key,
                                                   std::int64_t now) const;
  // Number of keys resident in one member's store (including any whose
  // values have expired but have not been swept yet).
  [[nodiscard]] std::size_t stored_keys(member_id m) const;
  [[nodiscard]] sim::network& net() { return net_; }

  // Read-side accounting for the lock-free get_now (the zero-read-lock
  // assertion test rides on these): fastpath = served entirely from the
  // published snapshot; slowpath = the snapshot was stale (a mutation since
  // the last read) and the reader took the ring mutex to rebuild it.
  [[nodiscard]] std::uint64_t read_fastpath() const {
    return read_fastpath_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t read_slowpath() const {
    return read_slowpath_.load(std::memory_order_relaxed);
  }

 private:
  struct stored_value {
    std::string value;
    std::int64_t expires_at;
  };
  // Immutable per-member copy published to readers: liveness, identity, the
  // routing table flattened to a contact list, and the store. Shared between
  // successive snapshots while the member is untouched (copy-on-write).
  struct snap_member {
    bool alive = true;
    contact self;
    sim::node_id host = 0;
    std::vector<contact> contacts;
    std::map<std::string, std::vector<stored_value>> store;
  };
  struct ring_snapshot {
    std::uint64_t version = 0;
    std::vector<std::shared_ptr<const snap_member>> members;
  };
  struct member {
    bool alive = true;
    contact self;
    sim::node_id host = 0;
    std::unique_ptr<routing_table> table;
    std::map<std::string, std::vector<stored_value>> store;
    std::size_t ops_since_sweep = 0;
    // Snapshot bookkeeping: dirty means the published copy (snap) no longer
    // matches this member and must be re-copied at the next rebuild.
    bool dirty = true;
    std::shared_ptr<const snap_member> snap;
  };

  // Iterative lookup driving closure. alpha = 1 outstanding RPC.
  struct lookup_state;
  void lookup(member_id via, const node_id& target,
              std::function<void(std::vector<contact> path, int hops)> done);
  void lookup_step(const std::shared_ptr<lookup_state>& state);

  void rpc(member_id from, const contact& to, std::function<void(member*)> handler,
           std::function<void()> on_unreachable);

  [[nodiscard]] member* find_member(const node_id& id);
  [[nodiscard]] std::int64_t now_seconds() const;
  // Virtual cost of one RPC exchange between two hosts (RTT + CPU).
  [[nodiscard]] double rpc_cost(sim::node_id from, sim::node_id to) const;

  // Store hygiene (callers hold mu_ on the sync path; the async path runs
  // single-threaded): drop expired values of `key`, then amortized-sweep the
  // member's whole store every sweep_interval ops.
  void prune_expired(member& m, const std::string& key, std::int64_t now);
  // Values name cache-holding members; one whose member has left the ring is
  // a dangling holder. Dropped at read time so a lookup never hands a dead
  // peer back to the transport — the caller re-replicates via origin instead.
  [[nodiscard]] bool holder_is_dead(const std::string& value) const;
  void drop_dangling(member& m, const std::string& key);
  void sweep_member(member& m, std::int64_t now);
  void touch_for_sweep(member& m, std::int64_t now);
  // Sloppy insert honoring max_values_per_key: refresh a duplicate value,
  // else displace the soonest-to-expire when the per-key list is full.
  void store_value(member& m, const std::string& key, const std::string& value,
                   std::int64_t expires_at, std::int64_t now);

  // The synchronous store walk used by put_now (under mu_). Walks toward
  // hash(key), learning/scrubbing routing state as it goes; fills `path`
  // with the walked shortlist sorted by distance.
  void walk_now(member& via, const std::string& key, std::int64_t now,
                bool collect_values, sync_result& out, std::vector<contact>& path);

  // --- snapshot plumbing (lock-free get_now) -----------------------------------
  // A store/liveness mutation: recopy this member at the next rebuild AND
  // force readers to rebuild (version bump).
  void mark_store_mutated(member& m);
  // A routing-only mutation (observe/remove): recopy at the next rebuild,
  // but don't force one — slightly stale contacts are harmless, stale
  // stores are not.
  static void mark_routing_mutated(member& m) { m.dirty = true; }
  // Returns a snapshot matching the current version, rebuilding and
  // publishing (old one retired behind the EBR epoch) if needed. mu_ held.
  const ring_snapshot* refresh_snapshot_locked();
  // The pure-read iterative walk over a snapshot: filters TTL-expired and
  // dangling-holder values at collection time, never mutates anything.
  // Members whose stores held filtered values are appended to `scrub` so the
  // caller can physically drop them afterwards (under the ring mutex) —
  // lookups stay destructive toward dangling/expired state, as the locked
  // path was, without steady-state reads ever touching the lock.
  void walk_snapshot(const ring_snapshot& snap, std::size_t via_index,
                     const std::string& key, std::int64_t now, sync_result& out,
                     std::vector<std::size_t>& scrub) const;
  // Index of the live member with this overlay id, or npos.
  [[nodiscard]] static std::size_t find_in_snapshot(const ring_snapshot& snap,
                                                    const node_id& id);
  [[nodiscard]] static bool holder_dead_in(const ring_snapshot& snap,
                                           const std::string& value);

  sim::network& net_;
  dht_config config_;
  mutable std::mutex mu_;  // guards members_ (stores, routing tables, liveness)
  std::vector<member> members_;

  std::atomic<const ring_snapshot*> snap_{nullptr};
  std::atomic<std::uint64_t> version_{1};
  mutable std::atomic<std::uint64_t> read_fastpath_{0};
  mutable std::atomic<std::uint64_t> read_slowpath_{0};
};

}  // namespace nakika::overlay
