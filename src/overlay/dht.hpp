// Sloppy DHT ring, modeled on Coral's distributed sloppy hash table: keys
// map to multiple values (node addresses caching a URL), stores may stop
// early at intermediate nodes when the path toward the key is loaded
// ("sloppiness"), and lookups return as soon as any values are found along
// the path. RPCs travel over the simulated network, so lookups cost real
// virtual-time hops.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "overlay/routing_table.hpp"
#include "sim/network.hpp"

namespace nakika::overlay {

struct dht_config {
  std::size_t k = 8;                 // bucket capacity / replication set size
  std::size_t spill_threshold = 4;   // sloppy store: stop early at a node
                                     // already holding this many values
  std::size_t max_values_per_key = 8;
  double rpc_cpu_seconds = 50e-6;    // per-RPC processing cost
  std::size_t rpc_bytes = 120;       // request/response wire size
};

// One logical ring. Multiple rings coexist (Coral levels / clusters).
class sloppy_dht {
 public:
  sloppy_dht(sim::network& net, dht_config config = {});

  using member_id = std::size_t;

  // Adds a member hosted on `host`, bootstrapping its routing table from the
  // existing members (iterative self-lookup, as in Kademlia join).
  member_id join(sim::node_id host, const std::string& name);
  void leave(member_id m);

  // Stores `value` under `key` with an absolute expiry, starting at member
  // `via`. `done(hops)` fires when the store lands.
  void put(member_id via, const std::string& key, const std::string& value,
           std::int64_t expires_at, std::function<void(int hops)> done);

  // Looks up `key` starting at `via`; `done(values, hops)` delivers all
  // non-expired values found (empty when the key is absent).
  void get(member_id via, const std::string& key,
           std::function<void(std::vector<std::string> values, int hops)> done);

  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] const contact& member_contact(member_id m) const;
  // Introspection for tests: values stored at one member for a key.
  [[nodiscard]] std::vector<std::string> stored_at(member_id m, const std::string& key,
                                                   std::int64_t now) const;
  [[nodiscard]] sim::network& net() { return net_; }

 private:
  struct stored_value {
    std::string value;
    std::int64_t expires_at;
  };
  struct member {
    bool alive = true;
    contact self;
    sim::node_id host = 0;
    std::unique_ptr<routing_table> table;
    std::map<std::string, std::vector<stored_value>> store;
  };

  // Iterative lookup driving closure. alpha = 1 outstanding RPC.
  struct lookup_state;
  void lookup(member_id via, const node_id& target,
              std::function<void(std::vector<contact> path, int hops)> done);
  void lookup_step(const std::shared_ptr<lookup_state>& state);

  void rpc(member_id from, const contact& to, std::function<void(member*)> handler,
           std::function<void()> on_unreachable);

  [[nodiscard]] member* find_member(const node_id& id);
  [[nodiscard]] std::int64_t now_seconds() const;
  void prune_expired(member& m, const std::string& key);

  sim::network& net_;
  dht_config config_;
  std::vector<member> members_;
};

}  // namespace nakika::overlay
