#include "overlay/redirector.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace nakika::overlay {

namespace {
constexpr std::string_view suffix = ".nakika.net";
}

dns_redirector::dns_redirector(sim::network& net, double tolerance)
    : net_(net), tolerance_(tolerance) {
  if (tolerance < 1.0) {
    throw std::invalid_argument("dns_redirector: tolerance must be >= 1");
  }
}

void dns_redirector::add_proxy(sim::node_id proxy) {
  if (std::find(proxies_.begin(), proxies_.end(), proxy) == proxies_.end()) {
    proxies_.push_back(proxy);
  }
}

void dns_redirector::remove_proxy(sim::node_id proxy) {
  proxies_.erase(std::remove(proxies_.begin(), proxies_.end(), proxy), proxies_.end());
}

sim::node_id dns_redirector::pick(sim::node_id client, util::rng& rng) const {
  double best = std::numeric_limits<double>::infinity();
  for (sim::node_id p : proxies_) {
    if (!net_.has_route(client, p)) continue;
    best = std::min(best, net_.route_latency(client, p));
  }
  if (!std::isfinite(best)) {
    throw std::logic_error("dns_redirector: no reachable proxy");
  }
  std::vector<sim::node_id> near;
  for (sim::node_id p : proxies_) {
    if (net_.has_route(client, p) && net_.route_latency(client, p) <= best * tolerance_) {
      near.push_back(p);
    }
  }
  return near[rng.next(near.size())];
}

std::string to_nakika_host(std::string_view origin_host) {
  if (is_nakika_host(origin_host)) return std::string(origin_host);
  return std::string(origin_host) + std::string(suffix);
}

std::string from_nakika_host(std::string_view nakika_host) {
  if (!is_nakika_host(nakika_host)) return std::string(nakika_host);
  return std::string(nakika_host.substr(0, nakika_host.size() - suffix.size()));
}

bool is_nakika_host(std::string_view host) { return host.ends_with(suffix); }

}  // namespace nakika::overlay
