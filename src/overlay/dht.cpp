#include "overlay/dht.hpp"

#include <algorithm>
#include <stdexcept>

namespace nakika::overlay {

sloppy_dht::sloppy_dht(sim::network& net, dht_config config)
    : net_(net), config_(config) {}

struct sloppy_dht::lookup_state {
  member_id via = 0;
  node_id target;
  std::string key;   // non-empty for get-style lookups
  bool is_get = false;

  std::vector<contact> shortlist;  // sorted by distance to target
  std::set<node_id> queried;
  int hops = 0;
  int rpc_budget = 0;
  bool finished = false;

  std::function<void(std::vector<contact>, int)> done_path;
  std::function<void(std::vector<std::string>, int)> done_values;
};

sloppy_dht::member_id sloppy_dht::join(sim::node_id host, const std::string& name) {
  member m;
  m.self.id = node_id::hash_of(name);
  m.self.host = host;
  m.host = host;
  m.table = std::make_unique<routing_table>(m.self.id, config_.k);

  // Bootstrap: seed with a few existing members, then the new node becomes
  // discoverable as others hear from it over RPC traffic.
  std::size_t seeds = 0;
  for (std::size_t i = 0; i < members_.size() && seeds < 3; ++i) {
    if (!members_[i].alive) continue;
    m.table->observe(members_[i].self);
    ++seeds;
  }
  members_.push_back(std::move(m));
  const member_id id = members_.size() - 1;

  // Existing members learn about the newcomer lazily; give the seeds a
  // direct pointer so early lookups can route at all.
  std::size_t told = 0;
  for (std::size_t i = 0; i < members_.size() - 1 && told < 3; ++i) {
    if (!members_[i].alive) continue;
    members_[i].table->observe(members_[id].self);
    ++told;
  }

  // Iterative self-lookup fills more distant buckets.
  if (members_.size() > 1) {
    lookup(id, members_[id].self.id, [](std::vector<contact>, int) {});
  }
  return id;
}

void sloppy_dht::leave(member_id m) {
  if (m >= members_.size()) throw std::invalid_argument("sloppy_dht::leave: bad member");
  members_[m].alive = false;
  members_[m].store.clear();
}

std::size_t sloppy_dht::member_count() const {
  std::size_t n = 0;
  for (const auto& m : members_) {
    if (m.alive) ++n;
  }
  return n;
}

const contact& sloppy_dht::member_contact(member_id m) const {
  if (m >= members_.size()) {
    throw std::invalid_argument("sloppy_dht::member_contact: bad member");
  }
  return members_[m].self;
}

std::vector<std::string> sloppy_dht::stored_at(member_id m, const std::string& key,
                                               std::int64_t now) const {
  std::vector<std::string> out;
  if (m >= members_.size()) return out;
  const auto it = members_[m].store.find(key);
  if (it == members_[m].store.end()) return out;
  for (const auto& sv : it->second) {
    if (sv.expires_at > now) out.push_back(sv.value);
  }
  return out;
}

sloppy_dht::member* sloppy_dht::find_member(const node_id& id) {
  for (auto& m : members_) {
    if (m.alive && m.self.id == id) return &m;
  }
  return nullptr;
}

std::int64_t sloppy_dht::now_seconds() const {
  return static_cast<std::int64_t>(net_.loop().now());
}

void sloppy_dht::prune_expired(member& m, const std::string& key) {
  const auto it = m.store.find(key);
  if (it == m.store.end()) return;
  const std::int64_t now = now_seconds();
  auto& values = it->second;
  values.erase(std::remove_if(values.begin(), values.end(),
                              [&](const stored_value& sv) { return sv.expires_at <= now; }),
               values.end());
  if (values.empty()) m.store.erase(it);
}

void sloppy_dht::rpc(member_id from, const contact& to, std::function<void(member*)> handler,
                     std::function<void()> on_unreachable) {
  const sim::node_id from_host = members_[from].host;
  net_.transfer(from_host, to.host, config_.rpc_bytes, [this, from, to,
                                                        handler = std::move(handler),
                                                        on_unreachable =
                                                            std::move(on_unreachable),
                                                        from_host]() {
    member* target = find_member(to.id);
    if (target == nullptr) {
      // Dead node: the reply never comes; model a timeout of one RTT.
      net_.loop().schedule(0.0, on_unreachable);
      return;
    }
    // The target hears from the caller and refreshes its routing table.
    target->table->observe(members_[from].self);
    net_.run_cpu(to.host, config_.rpc_cpu_seconds, [this, to, from_host,
                                                    handler = std::move(handler)]() {
      member* target_now = find_member(to.id);
      if (target_now == nullptr) return;
      net_.transfer(to.host, from_host, config_.rpc_bytes,
                    [target_now, handler = std::move(handler)]() { handler(target_now); });
    });
  });
}

void sloppy_dht::lookup(member_id via, const node_id& target,
                        std::function<void(std::vector<contact>, int)> done) {
  auto state = std::make_shared<lookup_state>();
  state->via = via;
  state->target = target;
  state->done_path = std::move(done);
  state->rpc_budget = static_cast<int>(config_.k) * 3;
  state->shortlist = members_[via].table->closest(target, config_.k);
  state->queried.insert(members_[via].self.id);
  lookup_step(state);
}

void sloppy_dht::lookup_step(const std::shared_ptr<lookup_state>& state) {
  if (state->finished) return;

  // Closest not-yet-queried contact.
  const contact* next = nullptr;
  for (const auto& c : state->shortlist) {
    if (!state->queried.contains(c.id)) {
      next = &c;
      break;
    }
  }
  if (next == nullptr || state->rpc_budget <= 0) {
    state->finished = true;
    if (state->is_get) {
      state->done_values({}, state->hops);
    } else {
      state->done_path(state->shortlist, state->hops);
    }
    return;
  }

  const contact to = *next;
  state->queried.insert(to.id);
  --state->rpc_budget;
  ++state->hops;

  rpc(state->via, to,
      [this, state, to](member* m) {
        // Get-style lookups return early when the contacted node holds
        // values for the key (Coral answers from the lookup path).
        if (state->is_get && !state->key.empty()) {
          prune_expired(*m, state->key);
          const auto it = m->store.find(state->key);
          if (it != m->store.end() && !it->second.empty()) {
            state->finished = true;
            std::vector<std::string> values;
            for (const auto& sv : it->second) values.push_back(sv.value);
            state->done_values(std::move(values), state->hops);
            return;
          }
        }
        // Merge the target's k-closest into our shortlist.
        std::vector<contact> more = m->table->closest(state->target, config_.k);
        more.push_back(m->self);
        for (const auto& c : more) {
          const bool known = std::any_of(state->shortlist.begin(), state->shortlist.end(),
                                         [&](const contact& s) { return s.id == c.id; });
          if (!known) state->shortlist.push_back(c);
          members_[state->via].table->observe(c);
        }
        std::sort(state->shortlist.begin(), state->shortlist.end(),
                  [&](const contact& a, const contact& b) {
                    return a.id.distance_to(state->target) < b.id.distance_to(state->target);
                  });
        if (state->shortlist.size() > config_.k * 2) {
          state->shortlist.resize(config_.k * 2);
        }
        lookup_step(state);
      },
      [this, state, to]() {
        members_[state->via].table->remove(to.id);
        lookup_step(state);
      });
}

void sloppy_dht::put(member_id via, const std::string& key, const std::string& value,
                     std::int64_t expires_at, std::function<void(int hops)> done) {
  if (via >= members_.size() || !members_[via].alive) {
    throw std::invalid_argument("sloppy_dht::put: bad member");
  }
  const node_id target = node_id::hash_of(key);

  lookup(via, target, [this, via, key, value, expires_at, done = std::move(done)](
                          std::vector<contact> path, int hops) {
    // Sloppy store: prefer the closest node, but spill outward past nodes
    // already holding spill_threshold values for this key. Captures by value:
    // this closure outlives the lookup callback (it runs after another RPC).
    auto store_into = [this, key, value, expires_at](member& m) {
      prune_expired(m, key);
      auto& values = m.store[key];
      // Refresh an existing copy of the same value.
      for (auto& sv : values) {
        if (sv.value == value) {
          sv.expires_at = std::max(sv.expires_at, expires_at);
          return;
        }
      }
      if (values.size() >= config_.max_values_per_key) {
        // Displace the soonest-to-expire value.
        auto oldest = std::min_element(values.begin(), values.end(),
                                       [](const stored_value& a, const stored_value& b) {
                                         return a.expires_at < b.expires_at;
                                       });
        *oldest = {value, expires_at};
        return;
      }
      values.push_back({value, expires_at});
    };

    member* chosen = nullptr;
    for (const auto& c : path) {
      member* m = find_member(c.id);
      if (m == nullptr) continue;
      prune_expired(*m, key);
      const auto it = m->store.find(key);
      const std::size_t held = it == m->store.end() ? 0 : it->second.size();
      if (held < config_.spill_threshold) {
        chosen = m;
        break;
      }
      if (chosen == nullptr) chosen = m;  // fallback: closest alive
    }
    if (chosen == nullptr && !members_.empty()) {
      chosen = &members_[via];  // degenerate ring: store locally
    }
    if (chosen != nullptr) {
      const contact dest = chosen->self;
      rpc(via, dest,
          [store_into, done, hops](member* m) {
            store_into(*m);
            done(hops + 1);
          },
          [done, hops]() { done(hops + 1); });
      return;
    }
    done(hops);
  });
}

void sloppy_dht::get(member_id via, const std::string& key,
                     std::function<void(std::vector<std::string>, int)> done) {
  if (via >= members_.size() || !members_[via].alive) {
    throw std::invalid_argument("sloppy_dht::get: bad member");
  }
  // Local store first: zero hops.
  prune_expired(members_[via], key);
  const auto it = members_[via].store.find(key);
  if (it != members_[via].store.end() && !it->second.empty()) {
    std::vector<std::string> values;
    for (const auto& sv : it->second) values.push_back(sv.value);
    net_.loop().schedule(0.0, [done = std::move(done), values = std::move(values)]() mutable {
      done(std::move(values), 0);
    });
    return;
  }

  auto state = std::make_shared<lookup_state>();
  state->via = via;
  state->target = node_id::hash_of(key);
  state->key = key;
  state->is_get = true;
  state->done_values = std::move(done);
  state->rpc_budget = static_cast<int>(config_.k) * 3;
  state->shortlist = members_[via].table->closest(state->target, config_.k);
  state->queried.insert(members_[via].self.id);
  lookup_step(state);
}

}  // namespace nakika::overlay
