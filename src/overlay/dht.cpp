#include "overlay/dht.hpp"

#include <algorithm>
#include <stdexcept>

namespace nakika::overlay {

sloppy_dht::sloppy_dht(sim::network& net, dht_config config)
    : net_(net), config_(config) {}

sloppy_dht::~sloppy_dht() {
  // Retire the published snapshot and drain what the epoch allows. By
  // contract no reader is active during destruction, so this frees
  // everything unless an unrelated structure elsewhere holds a guard open.
  const ring_snapshot* cur = snap_.exchange(nullptr, std::memory_order_acq_rel);
  auto& domain = util::ebr_domain::instance();
  if (cur != nullptr) {
    domain.retire(const_cast<ring_snapshot*>(cur),
                  [](void* p) { delete static_cast<ring_snapshot*>(p); });
  }
  domain.flush();
}

void sloppy_dht::mark_store_mutated(member& m) {
  m.dirty = true;
  version_.fetch_add(1, std::memory_order_release);
}

const sloppy_dht::ring_snapshot* sloppy_dht::refresh_snapshot_locked() {
  const ring_snapshot* cur = snap_.load(std::memory_order_acquire);
  const std::uint64_t v = version_.load(std::memory_order_acquire);
  if (cur != nullptr && cur->version == v && cur->members.size() == members_.size()) {
    return cur;  // another reader rebuilt while we waited on mu_
  }
  auto* fresh = new ring_snapshot;
  fresh->version = v;
  fresh->members.reserve(members_.size());
  for (auto& m : members_) {
    if (m.dirty || m.snap == nullptr) {
      auto sm = std::make_shared<snap_member>();
      sm->alive = m.alive;
      sm->self = m.self;
      sm->host = m.host;
      sm->contacts = m.table->all_contacts();
      sm->store = m.store;
      m.snap = std::move(sm);
      m.dirty = false;
    }
    fresh->members.push_back(m.snap);
  }
  const ring_snapshot* old = snap_.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) {
    util::ebr_domain::instance().retire(
        const_cast<ring_snapshot*>(old),
        [](void* p) { delete static_cast<ring_snapshot*>(p); });
  }
  return fresh;
}

std::size_t sloppy_dht::find_in_snapshot(const ring_snapshot& snap, const node_id& id) {
  for (std::size_t i = 0; i < snap.members.size(); ++i) {
    if (snap.members[i]->alive && snap.members[i]->self.id == id) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool sloppy_dht::holder_dead_in(const ring_snapshot& snap, const std::string& value) {
  const node_id id = node_id::hash_of(value);
  for (const auto& m : snap.members) {
    if (m->self.id == id) return !m->alive;
  }
  return false;  // not a member name: nothing to judge, keep the value
}

struct sloppy_dht::lookup_state {
  member_id via = 0;
  node_id target;
  std::string key;   // non-empty for get-style lookups
  bool is_get = false;

  std::vector<contact> shortlist;  // sorted by distance to target
  std::set<node_id> queried;
  int hops = 0;
  int rpc_budget = 0;
  bool finished = false;

  std::function<void(std::vector<contact>, int)> done_path;
  std::function<void(std::vector<std::string>, int)> done_values;
};

sloppy_dht::member_id sloppy_dht::join(sim::node_id host, const std::string& name) {
  member_id id = 0;
  bool lone = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    member m;
    m.self.id = node_id::hash_of(name);
    m.self.host = host;
    m.host = host;
    m.table = std::make_unique<routing_table>(m.self.id, config_.k);

    // Bootstrap: seed with a few existing members, then the new node becomes
    // discoverable as others hear from it over RPC traffic.
    std::size_t seeds = 0;
    for (std::size_t i = 0; i < members_.size() && seeds < 3; ++i) {
      if (!members_[i].alive) continue;
      m.table->observe(members_[i].self);
      ++seeds;
    }
    members_.push_back(std::move(m));
    id = members_.size() - 1;

    // Existing members learn about the newcomer lazily; give the seeds a
    // direct pointer so early lookups can route at all.
    std::size_t told = 0;
    for (std::size_t i = 0; i < members_.size() - 1 && told < 3; ++i) {
      if (!members_[i].alive) continue;
      members_[i].table->observe(members_[id].self);
      mark_routing_mutated(members_[i]);
      ++told;
    }
    lone = members_.size() == 1;
    // New member ⇒ snapshot indices shift; force readers to rebuild.
    version_.fetch_add(1, std::memory_order_release);
  }

  // Iterative self-lookup fills more distant buckets. Runs outside the ring
  // lock: it is event-driven sim traffic (join happens at deployment setup,
  // before concurrent serving starts).
  if (!lone) {
    lookup(id, members_[id].self.id, [](std::vector<contact>, int) {});
  }
  return id;
}

void sloppy_dht::leave(member_id m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("sloppy_dht::leave: bad member");
  members_[m].alive = false;
  members_[m].store.clear();
  mark_store_mutated(members_[m]);
}

void sloppy_dht::revive(member_id m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("sloppy_dht::revive: bad member");
  member& self = members_[m];
  if (self.alive) return;
  self.alive = true;
  // Same minimal re-seeding as join: mutual pointers with a few live members
  // so the revived node can route; walks refill the rest lazily (observe()
  // on RPC traffic re-announces it ring-wide).
  std::size_t seeds = 0;
  for (std::size_t i = 0; i < members_.size() && seeds < 3; ++i) {
    if (i == m || !members_[i].alive) continue;
    self.table->observe(members_[i].self);
    members_[i].table->observe(self.self);
    mark_routing_mutated(members_[i]);
    ++seeds;
  }
  mark_store_mutated(self);  // liveness flipped: readers must see it
}

void sloppy_dht::purge_store(member_id m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) throw std::invalid_argument("sloppy_dht::purge_store: bad member");
  members_[m].store.clear();
  mark_store_mutated(members_[m]);
}

bool sloppy_dht::holder_is_dead(const std::string& value) const {
  const node_id id = node_id::hash_of(value);
  for (const auto& m : members_) {
    if (m.self.id == id) return !m.alive;
  }
  return false;  // not a member name: nothing to judge, keep the value
}

void sloppy_dht::drop_dangling(member& m, const std::string& key) {
  const auto it = m.store.find(key);
  if (it == m.store.end()) return;
  auto& values = it->second;
  const std::size_t before = values.size();
  values.erase(std::remove_if(values.begin(), values.end(),
                              [&](const stored_value& sv) { return holder_is_dead(sv.value); }),
               values.end());
  if (values.size() != before) mark_store_mutated(m);
  if (values.empty()) m.store.erase(it);
}

std::size_t sloppy_dht::member_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& m : members_) {
    if (m.alive) ++n;
  }
  return n;
}

const contact& sloppy_dht::member_contact(member_id m) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) {
    throw std::invalid_argument("sloppy_dht::member_contact: bad member");
  }
  return members_[m].self;
}

std::vector<std::string> sloppy_dht::stored_at(member_id m, const std::string& key,
                                               std::int64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (m >= members_.size()) return out;
  const auto it = members_[m].store.find(key);
  if (it == members_[m].store.end()) return out;
  for (const auto& sv : it->second) {
    if (sv.expires_at > now) out.push_back(sv.value);
  }
  return out;
}

std::size_t sloppy_dht::stored_keys(member_id m) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (m >= members_.size()) return 0;
  return members_[m].store.size();
}

sloppy_dht::member* sloppy_dht::find_member(const node_id& id) {
  for (auto& m : members_) {
    if (m.alive && m.self.id == id) return &m;
  }
  return nullptr;
}

std::int64_t sloppy_dht::now_seconds() const {
  return static_cast<std::int64_t>(net_.loop().now());
}

double sloppy_dht::rpc_cost(sim::node_id from, sim::node_id to) const {
  return 2.0 * net_.route_latency_or(from, to, 0.0) + config_.rpc_cpu_seconds;
}

// ----- store hygiene -----------------------------------------------------------

void sloppy_dht::prune_expired(member& m, const std::string& key, std::int64_t now) {
  const auto it = m.store.find(key);
  if (it == m.store.end()) return;
  auto& values = it->second;
  const std::size_t before = values.size();
  values.erase(std::remove_if(values.begin(), values.end(),
                              [&](const stored_value& sv) { return sv.expires_at <= now; }),
               values.end());
  if (values.size() != before) mark_store_mutated(m);
  if (values.empty()) m.store.erase(it);
}

void sloppy_dht::sweep_member(member& m, std::int64_t now) {
  const std::size_t keys_before = m.store.size();
  std::size_t values_dropped = 0;
  for (auto it = m.store.begin(); it != m.store.end();) {
    auto& values = it->second;
    const std::size_t before = values.size();
    values.erase(
        std::remove_if(values.begin(), values.end(),
                       [&](const stored_value& sv) { return sv.expires_at <= now; }),
        values.end());
    // Defensive bound (a shrunk max_values_per_key must still converge):
    // drop the soonest-to-expire extras.
    while (values.size() > config_.max_values_per_key) {
      values.erase(std::min_element(values.begin(), values.end(),
                                    [](const stored_value& a, const stored_value& b) {
                                      return a.expires_at < b.expires_at;
                                    }));
    }
    values_dropped += before - values.size();
    it = values.empty() ? m.store.erase(it) : std::next(it);
  }
  if (values_dropped != 0 || m.store.size() != keys_before) mark_store_mutated(m);
}

void sloppy_dht::touch_for_sweep(member& m, std::int64_t now) {
  if (config_.sweep_interval == 0) return;
  if (++m.ops_since_sweep < config_.sweep_interval) return;
  m.ops_since_sweep = 0;
  sweep_member(m, now);
}

void sloppy_dht::store_value(member& m, const std::string& key, const std::string& value,
                             std::int64_t expires_at, std::int64_t now) {
  prune_expired(m, key, now);
  touch_for_sweep(m, now);
  mark_store_mutated(m);
  auto& values = m.store[key];
  // Refresh an existing copy of the same value.
  for (auto& sv : values) {
    if (sv.value == value) {
      sv.expires_at = std::max(sv.expires_at, expires_at);
      return;
    }
  }
  if (values.size() >= config_.max_values_per_key) {
    // Displace the soonest-to-expire value.
    auto oldest = std::min_element(values.begin(), values.end(),
                                   [](const stored_value& a, const stored_value& b) {
                                     return a.expires_at < b.expires_at;
                                   });
    *oldest = {value, expires_at};
    return;
  }
  values.push_back({value, expires_at});
}

void sloppy_dht::purge_expired(std::int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& m : members_) sweep_member(m, now);
}

// ----- event-driven path (single-threaded sim) ---------------------------------

void sloppy_dht::rpc(member_id from, const contact& to, std::function<void(member*)> handler,
                     std::function<void()> on_unreachable) {
  const sim::node_id from_host = members_[from].host;
  net_.transfer(from_host, to.host, config_.rpc_bytes, [this, from, to,
                                                        handler = std::move(handler),
                                                        on_unreachable =
                                                            std::move(on_unreachable),
                                                        from_host]() {
    member* target = find_member(to.id);
    if (target == nullptr) {
      // Dead node: the reply never comes; model a timeout of one RTT.
      net_.loop().schedule(0.0, on_unreachable);
      return;
    }
    // The target hears from the caller and refreshes its routing table.
    target->table->observe(members_[from].self);
    mark_routing_mutated(*target);
    net_.run_cpu(to.host, config_.rpc_cpu_seconds, [this, to, from_host,
                                                    handler = std::move(handler)]() {
      member* target_now = find_member(to.id);
      if (target_now == nullptr) return;
      net_.transfer(to.host, from_host, config_.rpc_bytes,
                    [target_now, handler = std::move(handler)]() { handler(target_now); });
    });
  });
}

void sloppy_dht::lookup(member_id via, const node_id& target,
                        std::function<void(std::vector<contact>, int)> done) {
  auto state = std::make_shared<lookup_state>();
  state->via = via;
  state->target = target;
  state->done_path = std::move(done);
  state->rpc_budget = static_cast<int>(config_.k) * 3;
  state->shortlist = members_[via].table->closest(target, config_.k);
  state->queried.insert(members_[via].self.id);
  lookup_step(state);
}

void sloppy_dht::lookup_step(const std::shared_ptr<lookup_state>& state) {
  if (state->finished) return;

  // Closest not-yet-queried contact.
  const contact* next = nullptr;
  for (const auto& c : state->shortlist) {
    if (!state->queried.contains(c.id)) {
      next = &c;
      break;
    }
  }
  if (next == nullptr || state->rpc_budget <= 0) {
    state->finished = true;
    if (state->is_get) {
      state->done_values({}, state->hops);
    } else {
      state->done_path(state->shortlist, state->hops);
    }
    return;
  }

  const contact to = *next;
  state->queried.insert(to.id);
  --state->rpc_budget;
  ++state->hops;

  rpc(state->via, to,
      [this, state, to](member* m) {
        // Get-style lookups return early when the contacted node holds
        // values for the key (Coral answers from the lookup path).
        if (state->is_get && !state->key.empty()) {
          prune_expired(*m, state->key, now_seconds());
          drop_dangling(*m, state->key);
          const auto it = m->store.find(state->key);
          if (it != m->store.end() && !it->second.empty()) {
            state->finished = true;
            std::vector<std::string> values;
            for (const auto& sv : it->second) values.push_back(sv.value);
            state->done_values(std::move(values), state->hops);
            return;
          }
        }
        // Merge the target's k-closest into our shortlist.
        std::vector<contact> more = m->table->closest(state->target, config_.k);
        more.push_back(m->self);
        for (const auto& c : more) {
          const bool known = std::any_of(state->shortlist.begin(), state->shortlist.end(),
                                         [&](const contact& s) { return s.id == c.id; });
          if (!known) state->shortlist.push_back(c);
          members_[state->via].table->observe(c);
        }
        mark_routing_mutated(members_[state->via]);
        std::sort(state->shortlist.begin(), state->shortlist.end(),
                  [&](const contact& a, const contact& b) {
                    return a.id.distance_to(state->target) < b.id.distance_to(state->target);
                  });
        if (state->shortlist.size() > config_.k * 2) {
          state->shortlist.resize(config_.k * 2);
        }
        lookup_step(state);
      },
      [this, state, to]() {
        members_[state->via].table->remove(to.id);
        mark_routing_mutated(members_[state->via]);
        lookup_step(state);
      });
}

void sloppy_dht::put(member_id via, const std::string& key, const std::string& value,
                     std::int64_t expires_at, std::function<void(int hops)> done) {
  if (via >= members_.size() || !members_[via].alive) {
    throw std::invalid_argument("sloppy_dht::put: bad member");
  }
  const node_id target = node_id::hash_of(key);

  lookup(via, target, [this, via, key, value, expires_at, done = std::move(done)](
                          std::vector<contact> path, int hops) {
    // Sloppy store: prefer the closest node, but spill outward past nodes
    // already holding spill_threshold values for this key.
    member* chosen = nullptr;
    for (const auto& c : path) {
      member* m = find_member(c.id);
      if (m == nullptr) continue;
      prune_expired(*m, key, now_seconds());
      const auto it = m->store.find(key);
      const std::size_t held = it == m->store.end() ? 0 : it->second.size();
      if (held < config_.spill_threshold) {
        chosen = m;
        break;
      }
      if (chosen == nullptr) chosen = m;  // fallback: closest alive
    }
    if (chosen == nullptr && !members_.empty()) {
      chosen = &members_[via];  // degenerate ring: store locally
    }
    if (chosen != nullptr) {
      const contact dest = chosen->self;
      rpc(via, dest,
          [this, key, value, expires_at, done, hops](member* m) {
            store_value(*m, key, value, expires_at, now_seconds());
            done(hops + 1);
          },
          [done, hops]() { done(hops + 1); });
      return;
    }
    done(hops);
  });
}

void sloppy_dht::get(member_id via, const std::string& key,
                     std::function<void(std::vector<std::string>, int)> done) {
  if (via >= members_.size() || !members_[via].alive) {
    throw std::invalid_argument("sloppy_dht::get: bad member");
  }
  // Local store first: zero hops.
  touch_for_sweep(members_[via], now_seconds());
  prune_expired(members_[via], key, now_seconds());
  drop_dangling(members_[via], key);
  const auto it = members_[via].store.find(key);
  if (it != members_[via].store.end() && !it->second.empty()) {
    std::vector<std::string> values;
    for (const auto& sv : it->second) values.push_back(sv.value);
    net_.loop().schedule(0.0, [done = std::move(done), values = std::move(values)]() mutable {
      done(std::move(values), 0);
    });
    return;
  }

  auto state = std::make_shared<lookup_state>();
  state->via = via;
  state->target = node_id::hash_of(key);
  state->key = key;
  state->is_get = true;
  state->done_values = std::move(done);
  state->rpc_budget = static_cast<int>(config_.k) * 3;
  state->shortlist = members_[via].table->closest(state->target, config_.k);
  state->queried.insert(members_[via].self.id);
  lookup_step(state);
}

// ----- synchronous path (thread-safe) ------------------------------------------

void sloppy_dht::walk_now(member& via, const std::string& key, std::int64_t now,
                          bool collect_values, sync_result& out,
                          std::vector<contact>& path) {
  const node_id target = node_id::hash_of(key);
  path = via.table->closest(target, config_.k);
  std::set<node_id> queried{via.self.id};
  int budget = static_cast<int>(config_.k) * 3;

  while (budget-- > 0) {
    const contact* next = nullptr;
    for (const auto& c : path) {
      if (!queried.contains(c.id)) {
        next = &c;
        break;
      }
    }
    if (next == nullptr) break;
    const contact to = *next;
    queried.insert(to.id);
    ++out.hops;
    out.latency_seconds += rpc_cost(via.host, to.host);

    member* m = find_member(to.id);
    if (m == nullptr) {
      via.table->remove(to.id);
      mark_routing_mutated(via);
      continue;
    }
    m->table->observe(via.self);
    mark_routing_mutated(*m);
    if (collect_values) {
      prune_expired(*m, key, now);
      drop_dangling(*m, key);
      touch_for_sweep(*m, now);
      const auto it = m->store.find(key);
      if (it != m->store.end() && !it->second.empty()) {
        for (const auto& sv : it->second) out.values.push_back(sv.value);
        return;
      }
    }
    std::vector<contact> more = m->table->closest(target, config_.k);
    more.push_back(m->self);
    for (const auto& c : more) {
      const bool known = std::any_of(path.begin(), path.end(),
                                     [&](const contact& s) { return s.id == c.id; });
      if (!known) path.push_back(c);
      via.table->observe(c);
    }
    mark_routing_mutated(via);
    std::sort(path.begin(), path.end(), [&](const contact& a, const contact& b) {
      return a.id.distance_to(target) < b.id.distance_to(target);
    });
    if (path.size() > config_.k * 2) path.resize(config_.k * 2);
  }
}

void sloppy_dht::walk_snapshot(const ring_snapshot& snap, std::size_t via_index,
                               const std::string& key, std::int64_t now, sync_result& out,
                               std::vector<std::size_t>& scrub) const {
  // Collection filters what the locked path scrubbed physically: expired
  // values by TTL, dangling holders by snapshot liveness. The snapshot
  // stores stay untouched; members that held filtered values are reported
  // via `scrub` so the caller drops them for real under the ring mutex.
  const snap_member& via = *snap.members[via_index];
  const auto collect = [&](const snap_member& m, std::size_t index) {
    const auto it = m.store.find(key);
    if (it == m.store.end()) return false;
    bool any = false;
    bool filtered = false;
    for (const auto& sv : it->second) {
      if (sv.expires_at <= now || holder_dead_in(snap, sv.value)) {
        filtered = true;
        continue;
      }
      out.values.push_back(sv.value);
      any = true;
    }
    if (filtered) scrub.push_back(index);
    return any;
  };
  if (collect(via, via_index)) return;  // zero hops: answered from the local store

  const node_id target = node_id::hash_of(key);
  const auto by_distance = [&](const contact& a, const contact& b) {
    return a.id.distance_to(target) < b.id.distance_to(target);
  };
  std::vector<contact> path = via.contacts;
  std::sort(path.begin(), path.end(), by_distance);
  if (path.size() > config_.k) path.resize(config_.k);
  std::set<node_id> queried{via.self.id};
  int budget = static_cast<int>(config_.k) * 3;

  while (budget-- > 0) {
    const contact* next = nullptr;
    for (const auto& c : path) {
      if (!queried.contains(c.id)) {
        next = &c;
        break;
      }
    }
    if (next == nullptr) break;
    const contact to = *next;
    queried.insert(to.id);
    ++out.hops;
    out.latency_seconds += rpc_cost(via.host, to.host);

    const std::size_t mi = find_in_snapshot(snap, to.id);
    if (mi == static_cast<std::size_t>(-1)) continue;  // dead or unknown
    const snap_member* m = snap.members[mi].get();
    if (collect(*m, mi)) return;
    std::vector<contact> more = m->contacts;
    std::sort(more.begin(), more.end(), by_distance);
    if (more.size() > config_.k) more.resize(config_.k);
    more.push_back(m->self);
    for (const auto& c : more) {
      const bool known = std::any_of(path.begin(), path.end(),
                                     [&](const contact& s) { return s.id == c.id; });
      if (!known) path.push_back(c);
    }
    std::sort(path.begin(), path.end(), by_distance);
    if (path.size() > config_.k * 2) path.resize(config_.k * 2);
  }
}

sloppy_dht::sync_result sloppy_dht::get_now(member_id via, const std::string& key,
                                            std::int64_t now) {
  // Lock-free fast path: pin the epoch, read the published snapshot, walk
  // it. Only a reader that finds the snapshot stale (some mutation bumped
  // the version since the last rebuild) touches the ring mutex.
  util::ebr_domain::guard g;
  const ring_snapshot* snap = snap_.load(std::memory_order_acquire);
  if (snap == nullptr || snap->version != version_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      snap = refresh_snapshot_locked();
    }
    read_slowpath_.fetch_add(1, std::memory_order_relaxed);
  } else {
    read_fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
  if (via >= snap->members.size() || !snap->members[via]->alive) {
    throw std::invalid_argument("sloppy_dht::get_now: bad member");
  }
  sync_result out;
  std::vector<std::size_t> scrub;
  walk_snapshot(*snap, via, key, now, out, scrub);
  if (!scrub.empty()) {
    // The walk saw expired or dangling values — drop them physically, as the
    // locked lookup used to. Liveness/TTL are re-judged against current
    // state under the lock, so a holder revived since the snapshot is kept.
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::size_t idx : scrub) {
      prune_expired(members_[idx], key, now);
      drop_dangling(members_[idx], key);
    }
  }
  return out;
}

int sloppy_dht::put_now(member_id via, const std::string& key, const std::string& value,
                        std::int64_t expires_at, std::int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (via >= members_.size() || !members_[via].alive) {
    throw std::invalid_argument("sloppy_dht::put_now: bad member");
  }
  member& origin = members_[via];
  sync_result walk;
  std::vector<contact> path;
  walk_now(origin, key, now, /*collect_values=*/false, walk, path);

  // Same sloppy-store placement as the event-driven put.
  member* chosen = nullptr;
  for (const auto& c : path) {
    member* m = find_member(c.id);
    if (m == nullptr) continue;
    prune_expired(*m, key, now);
    const auto held_it = m->store.find(key);
    const std::size_t held = held_it == m->store.end() ? 0 : held_it->second.size();
    if (held < config_.spill_threshold) {
      chosen = m;
      break;
    }
    if (chosen == nullptr) chosen = m;
  }
  if (chosen == nullptr) chosen = &origin;  // degenerate ring: store locally
  store_value(*chosen, key, value, expires_at, now);
  return walk.hops + 1;
}

}  // namespace nakika::overlay
