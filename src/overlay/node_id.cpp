#include "overlay/node_id.hpp"

#include <algorithm>
#include <bit>

#include "integrity/sha256.hpp"
#include "util/bytes.hpp"

namespace nakika::overlay {

node_id node_id::hash_of(std::string_view text) {
  const integrity::sha256_digest digest = integrity::sha256_hash(text);
  std::array<std::uint8_t, bytes> raw;
  std::copy_n(digest.begin(), bytes, raw.begin());
  return node_id(raw);
}

std::string node_id::hex() const {
  return util::to_hex(std::span<const std::uint8_t>(raw_.data(), raw_.size()));
}

node_id node_id::distance_to(const node_id& other) const {
  std::array<std::uint8_t, bytes> d;
  for (std::size_t i = 0; i < bytes; ++i) {
    d[i] = raw_[i] ^ other.raw_[i];
  }
  return node_id(d);
}

int node_id::bucket_index(const node_id& other) const {
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uint8_t x = static_cast<std::uint8_t>(raw_[i] ^ other.raw_[i]);
    if (x != 0) {
      return static_cast<int>(bits - 1 - i * 8 - static_cast<std::size_t>(std::countl_zero(x)));
    }
  }
  return -1;
}

}  // namespace nakika::overlay
