// 160-bit identifiers with the XOR metric, as in Kademlia/Coral. Keys and
// node IDs share the space; keys are SHA-256 digests truncated to 160 bits.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace nakika::overlay {

class node_id {
 public:
  static constexpr std::size_t bits = 160;
  static constexpr std::size_t bytes = bits / 8;

  node_id() { raw_.fill(0); }
  explicit node_id(const std::array<std::uint8_t, bytes>& raw) : raw_(raw) {}

  // Hash of arbitrary text (node names, URLs) into the ID space.
  static node_id hash_of(std::string_view text);

  [[nodiscard]] const std::array<std::uint8_t, bytes>& raw() const { return raw_; }
  [[nodiscard]] std::string hex() const;

  // XOR distance between two IDs.
  [[nodiscard]] node_id distance_to(const node_id& other) const;
  // Index of the highest set bit of the distance (0..159), or -1 when equal.
  // This is the k-bucket index.
  [[nodiscard]] int bucket_index(const node_id& other) const;

  auto operator<=>(const node_id& other) const = default;

 private:
  std::array<std::uint8_t, bytes> raw_;
};

// Orders a by XOR-closeness to a target.
struct closer_to {
  node_id target;
  bool operator()(const node_id& a, const node_id& b) const {
    return a.distance_to(target) < b.distance_to(target);
  }
};

}  // namespace nakika::overlay
