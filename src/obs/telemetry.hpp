// Telemetry tentpole, layer 3: export. telemetry_snapshot is the merged,
// plain-data view a node hands out; to_json renders it (no deps, manual
// escaping) for `nakika_node::telemetry_json()`, and stats_report renders a
// human-readable text table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nakika::obs {

// One row of the per-stage latency table.
struct stage_stats {
  std::string name;
  histogram_summary latency;
};

// One row of the per-tenant table (tenant == URL host == "site").
struct tenant_stats {
  std::string site;
  std::uint64_t requests = 0;
  std::uint64_t ic_hits = 0;
  std::uint64_t ic_misses = 0;
  // Inline-cache hit-state split: mono (way 0) + poly (ways 1-3) == ic_hits;
  // mega_lookups count accesses at sites that overflowed past 4 layouts.
  std::uint64_t ic_mono_hits = 0;
  std::uint64_t ic_poly_hits = 0;
  std::uint64_t ic_mega_lookups = 0;
  std::uint64_t log_lines = 0;
  std::uint64_t log_dropped = 0;
  std::uint64_t kills = 0;
  std::uint64_t quota_rejections = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_quota = 0;   // 0 = unlimited
  double weight = 0.0;             // configured congestion share weight
  double cpu_share = 0.0;          // observed share of total contribution
  // Cycle-collector time this tenant's scripts caused (watermark collections
  // inside its runs + reclaim when its sandboxes return to the pool). Billed
  // to the tenant through the resource manager as CPU.
  double gc_seconds = 0.0;
  std::uint64_t gc_collections = 0;
};

struct telemetry_snapshot {
  std::string node;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> values;  // non-integer gauges (ratios, seconds)
  std::vector<stage_stats> stages;
  std::vector<tenant_stats> tenants;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_retained = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t span_capacity = 0;  // per worker slot
};

[[nodiscard]] std::string to_json(const telemetry_snapshot& snap);
[[nodiscard]] std::string stats_report(const telemetry_snapshot& snap);

// Shared helpers for hand-rolled JSON (also used by bench reporters).
[[nodiscard]] std::string json_escape(const std::string& s);
[[nodiscard]] std::string json_number(double v);

}  // namespace nakika::obs
