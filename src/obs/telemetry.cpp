#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace nakika::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

void append_summary(std::ostringstream& os, const histogram_summary& h) {
  os << "{\"count\":" << h.count << ",\"p50\":" << json_number(h.p50)
     << ",\"p90\":" << json_number(h.p90) << ",\"p99\":" << json_number(h.p99)
     << ",\"p999\":" << json_number(h.p999) << ",\"mean\":" << json_number(h.mean)
     << ",\"max\":" << json_number(h.max) << "}";
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

std::string to_json(const telemetry_snapshot& snap) {
  std::ostringstream os;
  os << "{\"node\":\"" << json_escape(snap.node) << "\",";

  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},";

  os << "\"values\":{";
  first = true;
  for (const auto& [name, value] : snap.values) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  os << "},";

  os << "\"stages\":{";
  first = true;
  for (const auto& st : snap.stages) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(st.name) << "\":";
    append_summary(os, st.latency);
  }
  os << "},";

  os << "\"tenants\":{";
  first = true;
  for (const auto& t : snap.tenants) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(t.site) << "\":{"
       << "\"requests\":" << t.requests << ",\"ic_hits\":" << t.ic_hits
       << ",\"ic_misses\":" << t.ic_misses << ",\"ic_mono_hits\":" << t.ic_mono_hits
       << ",\"ic_poly_hits\":" << t.ic_poly_hits
       << ",\"ic_mega_lookups\":" << t.ic_mega_lookups
       << ",\"log_lines\":" << t.log_lines
       << ",\"log_dropped\":" << t.log_dropped << ",\"kills\":" << t.kills
       << ",\"quota_rejections\":" << t.quota_rejections
       << ",\"cache_bytes\":" << t.cache_bytes << ",\"cache_quota\":" << t.cache_quota
       << ",\"weight\":" << json_number(t.weight)
       << ",\"cpu_share\":" << json_number(t.cpu_share)
       << ",\"gc_seconds\":" << json_number(t.gc_seconds)
       << ",\"gc_collections\":" << t.gc_collections << "}";
  }
  os << "},";

  os << "\"spans\":{\"recorded\":" << snap.spans_recorded
     << ",\"retained\":" << snap.spans_retained << ",\"dropped\":" << snap.spans_dropped
     << ",\"capacity_per_slot\":" << snap.span_capacity << "}";
  os << "}";
  return os.str();
}

std::string stats_report(const telemetry_snapshot& snap) {
  std::ostringstream os;
  os << "=== telemetry";
  if (!snap.node.empty()) os << " (" << snap.node << ")";
  os << " ===\n";

  if (!snap.stages.empty()) {
    os << "stage latency (ms):\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf), "  %-16s %10s %9s %9s %9s %9s %9s\n", "stage", "count",
                  "p50", "p90", "p99", "p999", "max");
    os << buf;
    for (const auto& st : snap.stages) {
      if (st.latency.count == 0) continue;
      std::snprintf(buf, sizeof(buf), "  %-16s %10llu %9s %9s %9s %9s %9s\n", st.name.c_str(),
                    static_cast<unsigned long long>(st.latency.count), ms(st.latency.p50).c_str(),
                    ms(st.latency.p90).c_str(), ms(st.latency.p99).c_str(),
                    ms(st.latency.p999).c_str(), ms(st.latency.max).c_str());
      os << buf;
    }
  }

  if (!snap.tenants.empty()) {
    os << "tenants:\n";
    for (const auto& t : snap.tenants) {
      os << "  " << t.site << ": requests=" << t.requests << " ic=" << t.ic_hits << "/"
         << (t.ic_hits + t.ic_misses);
      if (t.ic_poly_hits != 0 || t.ic_mega_lookups != 0) {
        os << " (mono=" << t.ic_mono_hits << " poly=" << t.ic_poly_hits
           << " mega=" << t.ic_mega_lookups << ")";
      }
      os << " cache_bytes=" << t.cache_bytes;
      if (t.cache_quota != 0) os << "/" << t.cache_quota;
      if (t.quota_rejections != 0) os << " quota_rejections=" << t.quota_rejections;
      if (t.kills != 0) os << " kills=" << t.kills;
      if (t.log_dropped != 0) os << " log_dropped=" << t.log_dropped;
      if (t.weight != 0.0) os << " weight=" << json_number(t.weight);
      if (t.cpu_share != 0.0) os << " cpu_share=" << json_number(t.cpu_share);
      if (t.gc_collections != 0) {
        os << " gc=" << t.gc_collections << "x/" << json_number(t.gc_seconds * 1e3) << "ms";
      }
      os << "\n";
    }
  }

  if (!snap.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      if (value == 0) continue;
      os << "  " << name << "=" << value << "\n";
    }
  }
  if (!snap.values.empty()) {
    os << "values:\n";
    for (const auto& [name, value] : snap.values) {
      os << "  " << name << "=" << json_number(value) << "\n";
    }
  }

  os << "spans: recorded=" << snap.spans_recorded << " retained=" << snap.spans_retained
     << " dropped=" << snap.spans_dropped << " capacity_per_slot=" << snap.span_capacity
     << "\n";
  return os.str();
}

}  // namespace nakika::obs
