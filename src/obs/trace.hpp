// Telemetry tentpole, layer 2: per-request trace spans. A trace_context
// rides on the request (via core::exec_state) through pipeline → sandbox →
// http_cache → single_flight → peer_transport → origin, accumulating stage
// timings and outcome flags. Completed spans land in a bounded per-worker
// ring (span_ring) for inspection; stage durations are also folded into the
// registry's latency histograms by the node.
//
// The clock is injected (clock_fn) so the workers=0 sim path stamps spans
// with *virtual* time from the event loop — span order, attribution, and
// flags are reproducible for a fixed seed (timestamps repeat up to the
// measured script CPU the sim bills into virtual time) — while worker mode
// uses wall seconds. A null context (or clock) disables tracing with
// two-branch cost on the hot path.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define NAKIKA_OBS_HAVE_TSC 1
#endif

namespace nakika::obs {

// Cheap monotonic clock for worker-mode span stamps: one RDTSC + one
// multiply (~10ns) instead of a clock_gettime call (~40ns), calibrated once
// per process against steady_clock. Span timings tolerate TSC caveats
// (cross-socket skew, non-invariant TSC on antique hardware) that would be
// unacceptable for billing; falls back to steady_clock off x86-64.
class fast_clock {
 public:
  [[nodiscard]] static double now_seconds() {
#ifdef NAKIKA_OBS_HAVE_TSC
    const calibration& c = calib();
    return static_cast<double>(__rdtsc() - c.tsc_base) * c.seconds_per_tick;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

 private:
#ifdef NAKIKA_OBS_HAVE_TSC
  struct calibration {
    std::uint64_t tsc_base;
    double seconds_per_tick;
  };
  static const calibration& calib() {
    // ~2ms spin: long enough for ~0.1% frequency accuracy, short enough to
    // be invisible at first use (thread-safe one-time static init).
    static const calibration c = [] {
      const auto w0 = std::chrono::steady_clock::now();
      const std::uint64_t t0 = __rdtsc();
      while (std::chrono::steady_clock::now() - w0 < std::chrono::milliseconds(2)) {
      }
      const std::uint64_t t1 = __rdtsc();
      const auto w1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(w1 - w0).count();
      return calibration{t0, secs / static_cast<double>(t1 - t0)};
    }();
    return c;
  }
#endif
};

// Request stages, in rough hot-path order. `total` is end-to-end.
enum class stage : std::uint8_t {
  total = 0,
  cache_lookup,    // content-cache probe
  stage_load,      // fetching overlay stage scripts
  policy_match,    // decision-tree predicate evaluation
  script_exec,     // sandbox compile + handler execution
  coalesced_wait,  // blocked behind another flight's leader
  peer_fetch,      // DHT probe + peer transfer
  origin_fetch,    // fallthrough to the origin server
  nkp_render,      // Na Kika pipeline-composition rendering
  gc,              // script-heap cycle collection (watermark + pool-return)
};
inline constexpr std::size_t stage_count = 10;

[[nodiscard]] inline const char* to_string(stage s) {
  switch (s) {
    case stage::total: return "total";
    case stage::cache_lookup: return "cache_lookup";
    case stage::stage_load: return "stage_load";
    case stage::policy_match: return "policy_match";
    case stage::script_exec: return "script_exec";
    case stage::coalesced_wait: return "coalesced_wait";
    case stage::peer_fetch: return "peer_fetch";
    case stage::origin_fetch: return "origin_fetch";
    case stage::nkp_render: return "nkp_render";
    case stage::gc: return "gc";
  }
  return "unknown";
}

// Outcome tag bits (span_record::flags).
namespace span_flag {
inline constexpr std::uint32_t cache_hit = 1u << 0;
inline constexpr std::uint32_t cache_miss = 1u << 1;
inline constexpr std::uint32_t peer_hit = 1u << 2;
inline constexpr std::uint32_t origin = 1u << 3;
inline constexpr std::uint32_t coalesced = 1u << 4;
inline constexpr std::uint32_t throttled = 1u << 5;
inline constexpr std::uint32_t terminated = 1u << 6;
inline constexpr std::uint32_t failed = 1u << 7;
inline constexpr std::uint32_t rejected = 1u << 8;
inline constexpr std::uint32_t nkp = 1u << 9;
}  // namespace span_flag

// One finished request, as recorded in the span ring.
struct span_record {
  std::string site;      // tenant (URL host)
  std::string path;
  double start = 0.0;    // trace-clock seconds at request entry
  std::array<double, stage_count> stage_seconds{};
  std::uint32_t flags = 0;
  std::uint32_t ic_hits = 0;
  std::uint32_t ic_misses = 0;
  std::uint16_t status = 0;

  [[nodiscard]] double seconds(stage s) const {
    return stage_seconds[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool has(std::uint32_t f) const { return (flags & f) != 0; }
};

// Mutable per-request context. Not thread-safe by design: one request is
// timed by one thread at a time (the sim path is single-threaded; worker
// mode runs a request synchronously on its worker).
class trace_context {
 public:
  using clock_fn = double (*)(void*);

  trace_context() = default;
  trace_context(clock_fn clock, void* clock_arg) : clock_(clock), clock_arg_(clock_arg) {}

  [[nodiscard]] bool enabled() const { return clock_ != nullptr; }
  [[nodiscard]] double now() const { return clock_ ? clock_(clock_arg_) : 0.0; }

  void add(stage s, double seconds) {
    rec_.stage_seconds[static_cast<std::size_t>(s)] += seconds;
  }
  void flag(std::uint32_t f) { rec_.flags |= f; }
  void add_ic(std::uint32_t hits, std::uint32_t misses) {
    rec_.ic_hits += hits;
    rec_.ic_misses += misses;
  }

  span_record& record() { return rec_; }
  [[nodiscard]] const span_record& record() const { return rec_; }

  // RAII stage timer: adds elapsed trace-clock time on destruction.
  class scoped {
   public:
    scoped(trace_context* ctx, stage s) : ctx_(ctx), stage_(s) {
      if (ctx_ != nullptr && ctx_->enabled()) begin_ = ctx_->now();
    }
    ~scoped() { stop(); }
    scoped(const scoped&) = delete;
    scoped& operator=(const scoped&) = delete;

    void stop() {
      if (ctx_ != nullptr && ctx_->enabled() && !stopped_) {
        ctx_->add(stage_, ctx_->now() - begin_);
        stopped_ = true;
      }
    }

   private:
    trace_context* ctx_;
    stage stage_;
    double begin_ = 0.0;
    bool stopped_ = false;
  };

 private:
  clock_fn clock_ = nullptr;
  void* clock_arg_ = nullptr;
  span_record rec_;
};

// Bounded per-worker ring of finished spans. Push is slot-private (only the
// owning worker writes a slot), guarded by a slot-local mutex that only the
// snapshot reader contends on. Storage is a flat vector used as a circular
// buffer: at capacity the oldest span is overwritten in place (move-assign
// reuses the evicted record's string capacity, so a steady-state push does
// no allocation) and counted as dropped.
class span_ring {
 public:
  span_ring(std::size_t slots, std::size_t capacity_per_slot)
      : slots_(slots == 0 ? 1 : slots), capacity_(capacity_per_slot) {}

  void push(std::size_t slot, span_record&& rec) {
    if (capacity_ == 0) return;
    slot_state& s = slots_[slot];
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.spans.size() < capacity_) {
      s.spans.push_back(std::move(rec));
    } else {
      s.spans[s.head] = std::move(rec);
      s.head = (s.head + 1) % capacity_;
      s.dropped += 1;
    }
  }

  // All retained spans, slot 0 (sim/caller thread) first, oldest-first
  // within a slot.
  [[nodiscard]] std::vector<span_record> snapshot() const {
    std::vector<span_record> out;
    for (const slot_state& s : slots_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      for (std::size_t i = 0; i < s.spans.size(); ++i) {
        out.push_back(s.spans[(s.head + i) % s.spans.size()]);
      }
    }
    return out;
  }

  [[nodiscard]] std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const slot_state& s : slots_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      n += s.dropped;
    }
    return n;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const slot_state& s : slots_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      n += s.spans.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity_per_slot() const { return capacity_; }

 private:
  struct alignas(64) slot_state {
    mutable std::mutex mu;
    std::vector<span_record> spans;  // circular once size reaches capacity
    std::size_t head = 0;            // index of the oldest span when full
    std::uint64_t dropped = 0;
  };
  std::deque<slot_state> slots_;
  std::size_t capacity_;
};

}  // namespace nakika::obs
