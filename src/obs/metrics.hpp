// Telemetry tentpole, layer 1: the lock-free metrics registry. One registry
// per node holds counters, gauges, and fixed-bucket log-scale latency
// histograms, each materialized as per-worker slots so the hot-path record is
// a single relaxed atomic add to a slot no other worker writes — no locks, no
// shared cache lines between workers. Readers merge all slots into a plain
// snapshot, so taking telemetry while workers serve costs the workers
// nothing. This retires the node's stats mutex (ROADMAP: "seqlock or
// per-worker buffered stats").
//
// Registration (counter()/gauge()/histogram()) is setup-time: ids handed out
// before worker threads start recording are stable offsets into
// pre-allocated per-slot storage, so record paths never touch the name maps
// or their mutex.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nakika::obs {

// Log-scale latency histogram over microseconds: 16 exact linear buckets for
// 0..15 µs, then 8 sub-buckets per power of two (≈ 12% relative resolution)
// up to 2^40 µs (~13 days), clamped above. Buckets are relaxed atomics, so
// one histogram instance may be shared by many recording threads; the
// registry additionally shards instances per worker so the hottest paths
// never share a line at all. Percentiles are answered from merged counts
// (histogram_counts below) at bucket-upper-bound precision — conservative,
// never under-reports.
class latency_histogram {
 public:
  static constexpr std::size_t sub_bits = 3;                   // 8 sub-buckets/octave
  static constexpr std::size_t linear_buckets = 1u << (sub_bits + 1);  // 16
  static constexpr std::size_t max_exponent = 40;
  static constexpr std::size_t bucket_count =
      linear_buckets + (max_exponent - sub_bits - 1) * (1u << sub_bits);  // 304

  void record_seconds(double seconds) { record_micros(to_micros(seconds)); }
  void record_micros(std::uint64_t micros) {
    buckets_[bucket_index(micros)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::uint64_t to_micros(double seconds) {
    if (seconds <= 0.0) return 0;
    const double m = seconds * 1e6;
    return m >= 1e18 ? static_cast<std::uint64_t>(1e18) : static_cast<std::uint64_t>(m);
  }

  // Monotone in `micros`; exact below 16 µs, then leading-one exponent plus
  // the next `sub_bits` mantissa bits.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t micros) {
    if (micros < linear_buckets) return static_cast<std::size_t>(micros);
    std::size_t e = static_cast<std::size_t>(std::bit_width(micros));  // >= 5
    if (e > max_exponent) {
      e = max_exponent;
      micros = (1ULL << max_exponent) - 1;
    }
    const std::size_t shift = e - 1 - sub_bits;
    const std::size_t sub = static_cast<std::size_t>(micros >> shift) & ((1u << sub_bits) - 1);
    return linear_buckets + (e - sub_bits - 2) * (1u << sub_bits) + sub;
  }

  // [lower, upper) bucket bounds in microseconds.
  [[nodiscard]] static std::uint64_t bucket_lower_micros(std::size_t i) {
    if (i < linear_buckets) return i;
    const std::size_t block = (i - linear_buckets) >> sub_bits;
    const std::size_t sub = (i - linear_buckets) & ((1u << sub_bits) - 1);
    const std::size_t e = block + sub_bits + 2;  // bit_width of values in this octave
    return (1ULL << (e - 1)) + (static_cast<std::uint64_t>(sub) << (e - 1 - sub_bits));
  }
  [[nodiscard]] static std::uint64_t bucket_upper_micros(std::size_t i) {
    if (i + 1 < bucket_count) return bucket_lower_micros(i + 1);
    return 1ULL << max_exponent;
  }

 private:
  std::array<std::atomic<std::uint64_t>, bucket_count> buckets_{};
};

// Merged (plain, non-atomic) bucket counts from one or more histograms.
struct histogram_counts {
  std::array<std::uint64_t, latency_histogram::bucket_count> counts{};
  std::uint64_t total = 0;

  void add(const latency_histogram& h) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::uint64_t c = h.bucket(i);
      counts[i] += c;
      total += c;
    }
  }

  // Nearest-rank quantile (q in [0,1]), reported at the bucket upper bound.
  [[nodiscard]] double quantile_seconds(double q) const {
    if (total == 0) return 0.0;
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= rank) {
        return static_cast<double>(latency_histogram::bucket_upper_micros(i)) * 1e-6;
      }
    }
    return static_cast<double>(latency_histogram::bucket_upper_micros(counts.size() - 1)) * 1e-6;
  }

  // Bucket-midpoint mean; exact for the linear buckets, <=12% off above.
  [[nodiscard]] double mean_seconds() const {
    if (total == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      const double mid = 0.5 * (static_cast<double>(latency_histogram::bucket_lower_micros(i)) +
                                static_cast<double>(latency_histogram::bucket_upper_micros(i)));
      sum += mid * static_cast<double>(counts[i]);
    }
    return sum / static_cast<double>(total) * 1e-6;
  }

  [[nodiscard]] double max_seconds() const {
    for (std::size_t i = counts.size(); i-- > 0;) {
      if (counts[i] != 0) {
        return static_cast<double>(latency_histogram::bucket_upper_micros(i)) * 1e-6;
      }
    }
    return 0.0;
  }
};

// The percentile row every surface reports (BENCH json, telemetry_json,
// stats_report, scenario latency gates).
struct histogram_summary {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

[[nodiscard]] inline histogram_summary summarize(const histogram_counts& c) {
  histogram_summary s;
  s.count = c.total;
  s.p50 = c.quantile_seconds(0.50);
  s.p90 = c.quantile_seconds(0.90);
  s.p99 = c.quantile_seconds(0.99);
  s.p999 = c.quantile_seconds(0.999);
  s.mean = c.mean_seconds();
  s.max = c.max_seconds();
  return s;
}

[[nodiscard]] inline histogram_summary summarize(const latency_histogram& h) {
  histogram_counts c;
  c.add(h);
  return summarize(c);
}

struct metrics_snapshot {
  std::map<std::string, std::uint64_t> counters;  // gauges merge in here too
  std::map<std::string, histogram_summary> histograms;
};

class metrics_registry {
 public:
  using metric_id = std::uint32_t;

  explicit metrics_registry(std::size_t slots, std::size_t counter_capacity = 1024,
                            std::size_t histogram_capacity = 64)
      : histogram_capacity_(histogram_capacity) {
    if (slots == 0) slots = 1;
    counter_slots_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      counter_slots_.push_back(std::make_unique<counter_slot>(counter_capacity));
    }
    hist_columns_.resize(histogram_capacity);
  }

  // --- registration (setup-time; idempotent per name) ---
  metric_id counter(const std::string& name) { return register_word(name); }
  // A gauge is a counter slot written with set_gauge (last value per slot,
  // summed across slots on read — each worker owns its share of the value).
  metric_id gauge(const std::string& name) { return register_word(name); }
  metric_id histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = hists_by_name_.find(name); it != hists_by_name_.end()) {
      return it->second;
    }
    if (next_hist_ >= histogram_capacity_) {
      // Out of pre-allocated columns: alias everything else onto the last
      // one rather than crash — a misconfigured registry degrades, the
      // serving path does not.
      return static_cast<metric_id>(histogram_capacity_ - 1);
    }
    const metric_id id = static_cast<metric_id>(next_hist_++);
    hist_columns_[id] = std::make_unique<latency_histogram[]>(counter_slots_.size());
    hists_by_name_[name] = id;
    return id;
  }

  // --- hot path: one relaxed atomic add, slot-private storage ---
  void add(std::size_t slot, metric_id id, std::uint64_t n = 1) {
    counter_slots_[slot]->words[id].fetch_add(n, std::memory_order_relaxed);
  }
  void set_gauge(std::size_t slot, metric_id id, std::uint64_t v) {
    counter_slots_[slot]->words[id].store(v, std::memory_order_relaxed);
  }
  void record_seconds(std::size_t slot, metric_id hist_id, double seconds) {
    hist_columns_[hist_id][slot].record_seconds(seconds);
  }
  void record_micros(std::size_t slot, metric_id hist_id, std::uint64_t micros) {
    hist_columns_[hist_id][slot].record_micros(micros);
  }

  // --- merged reads ---
  [[nodiscard]] std::uint64_t counter_value(metric_id id) const {
    std::uint64_t sum = 0;
    for (const auto& s : counter_slots_) {
      sum += s->words[id].load(std::memory_order_relaxed);
    }
    return sum;
  }
  [[nodiscard]] histogram_counts histogram_merged(metric_id id) const {
    histogram_counts out;
    for (std::size_t s = 0; s < counter_slots_.size(); ++s) {
      out.add(hist_columns_[id][s]);
    }
    return out;
  }

  [[nodiscard]] metrics_snapshot snapshot() const {
    std::map<std::string, metric_id> counters;
    std::map<std::string, metric_id> hists;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      counters = counters_by_name_;
      hists = hists_by_name_;
    }
    metrics_snapshot out;
    for (const auto& [name, id] : counters) out.counters[name] = counter_value(id);
    for (const auto& [name, id] : hists) out.histograms[name] = summarize(histogram_merged(id));
    return out;
  }

  [[nodiscard]] std::size_t slots() const { return counter_slots_.size(); }

 private:
  // One worker's counter words, cache-line aligned at both ends so no word
  // ever shares a line with another slot's.
  struct counter_slot {
    explicit counter_slot(std::size_t capacity) : words(capacity) {}
    alignas(64) std::vector<std::atomic<std::uint64_t>> words;
  };

  metric_id register_word(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = counters_by_name_.find(name); it != counters_by_name_.end()) {
      return it->second;
    }
    const std::size_t capacity = counter_slots_[0]->words.size();
    if (next_word_ >= capacity) return static_cast<metric_id>(capacity - 1);  // degrade
    const metric_id id = static_cast<metric_id>(next_word_++);
    counters_by_name_[name] = id;
    return id;
  }

  std::size_t histogram_capacity_;
  std::vector<std::unique_ptr<counter_slot>> counter_slots_;
  // Pre-sized (never reallocated) so record() indexes without the mutex.
  std::vector<std::unique_ptr<latency_histogram[]>> hist_columns_;

  mutable std::mutex mu_;  // name maps only; never taken on a record path
  std::map<std::string, metric_id> counters_by_name_;
  std::map<std::string, metric_id> hists_by_name_;
  std::size_t next_word_ = 0;
  std::size_t next_hist_ = 0;
};

// Per-worker keyed accumulators (site -> stats): each worker mutates its own
// slot under a slot-local mutex that only snapshot readers ever contend on,
// so workers never serialize against each other — the replacement for the
// node-wide stats mutex that used to guard site_logs_/site_cache_.
template <typename T>
class per_worker_keyed {
 public:
  explicit per_worker_keyed(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

  template <typename Fn>
  void update(std::size_t slot, const std::string& key, Fn&& fn) {
    slot_state& s = slots_[slot];
    const std::lock_guard<std::mutex> lock(s.mu);
    fn(s.entries[key]);
  }

  // Visits (key, entry) for every slot in slot order (slot 0 — the sim/caller
  // thread — first, preserving single-threaded insertion order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const slot_state& s : slots_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [key, entry] : s.entries) fn(key, entry);
    }
  }

  template <typename Fn>
  void for_key(const std::string& key, Fn&& fn) const {
    for (const slot_state& s : slots_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      if (const auto it = s.entries.find(key); it != s.entries.end()) fn(it->second);
    }
  }

  [[nodiscard]] std::size_t slots() const { return slots_.size(); }

 private:
  struct alignas(64) slot_state {
    mutable std::mutex mu;
    std::map<std::string, T> entries;
  };
  std::deque<slot_state> slots_;  // deque: slot_state is not movable
};

}  // namespace nakika::obs
