#include "sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace nakika::sim {

void event_loop::schedule(sim_time delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("event_loop::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void event_loop::schedule_at(sim_time when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("event_loop::schedule_at: time in the past");
  queue_.push({when, next_seq_++, std::move(fn)});
}

bool event_loop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved out
  // before pop, so copy the metadata and move the closure via const_cast-free
  // re-push avoidance: take a copy of the handler (cheap for shared-state
  // closures) then pop.
  const event& top = queue_.top();
  now_ = top.when;
  std::function<void()> fn = top.fn;
  queue_.pop();
  fn();
  return true;
}

void event_loop::run() {
  while (step()) {
  }
}

void event_loop::run_until(sim_time deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace nakika::sim
