// Topology builders for the paper's experimental setups:
//   - LAN: client, proxy, and origin on one switched 100 Mbit Ethernet
//     (micro-benchmarks, §5.1 and the local SIMM runs, §5.2).
//   - Constrained WAN: LAN plus an 80 ms / 8 Mbps bottleneck in front of the
//     origin (the "simulate a wide-area network" configuration in §5.2).
//   - Geo: client sites on the US East Coast, West Coast, and Asia with
//     proxies near each site and the origin in New York (§5.2 wide-area,
//     §5.3 SPECweb).
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace nakika::sim {

struct three_tier {
  node_id client = 0;
  node_id proxy = 0;
  node_id origin = 0;
};

// 100 Mbit switched Ethernet, 0.2 ms one-way latency everywhere.
three_tier build_lan(network& net);

// Same LAN between client and proxy; origin behind an 80 ms one-way,
// 8 Mbps shared bottleneck (for both proxy and client paths, as in §5.2).
three_tier build_constrained_wan(network& net);

struct geo_site {
  std::string region;   // "us-east", "us-west", "asia"
  node_id client = 0;   // load-generating host at this site
  node_id proxy = 0;    // nearby Na Kika node
};

struct geo_deployment {
  node_id origin = 0;                // PlanetLab node in New York
  std::vector<geo_site> sites;
};

// `sites_per_region` client sites in each of us-east / us-west / asia, each
// with a nearby proxy; inter-region latencies model the public internet and
// a shared per-host bandwidth cap models PlanetLab's per-project limit.
geo_deployment build_geo(network& net, int sites_per_region,
                         double host_bandwidth_bytes_per_sec = 1.25e6);

}  // namespace nakika::sim
