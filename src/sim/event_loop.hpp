// Discrete-event simulation kernel: a virtual clock and an ordered event
// queue. All end-to-end experiments (paper §5.2, §5.3) run on this kernel so
// wide-area conditions are reproducible without a testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace nakika::sim {

using sim_time = double;  // seconds of virtual time

class event_loop {
 public:
  // Schedules `fn` to run `delay` seconds from now (>= 0).
  void schedule(sim_time delay, std::function<void()> fn);
  void schedule_at(sim_time when, std::function<void()> fn);

  [[nodiscard]] sim_time now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // Runs events until the queue is empty.
  void run();
  // Runs events with timestamps <= `deadline`; the clock ends at `deadline`
  // (or at the last event, whichever is later within the bound).
  void run_until(sim_time deadline);
  // Executes exactly one event if available; returns false when idle.
  bool step();

 private:
  struct event {
    sim_time when;
    std::uint64_t seq;  // tie-break preserves scheduling order
    std::function<void()> fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<event, std::vector<event>, later> queue_;
  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nakika::sim
