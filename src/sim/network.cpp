#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace nakika::sim {

node_id network::add_node(std::string name, int cores) {
  if (cores < 1) throw std::invalid_argument("network::add_node: cores must be >= 1");
  node_state n;
  n.name = std::move(name);
  n.core_free.assign(static_cast<std::size_t>(cores), 0.0);
  nodes_.push_back(std::move(n));
  return static_cast<node_id>(nodes_.size() - 1);
}

link_id network::add_link(double bytes_per_second) {
  if (bytes_per_second <= 0) {
    throw std::invalid_argument("network::add_link: bandwidth must be > 0");
  }
  links_.push_back({bytes_per_second, 0.0, 0});
  return static_cast<link_id>(links_.size() - 1);
}

void network::set_route(node_id a, node_id b, double latency_seconds,
                        std::vector<link_id> links) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::invalid_argument("network::set_route: unknown node");
  }
  for (link_id l : links) {
    if (l >= links_.size()) throw std::invalid_argument("network::set_route: unknown link");
  }
  routes_[route_key(a, b)] = {latency_seconds, std::move(links)};
}

void network::transfer(node_id from, node_id to, std::size_t bytes,
                       std::function<void()> done) {
  if (from == to) {
    loop_.schedule(0.0, std::move(done));
    return;
  }
  const auto it = routes_.find(route_key(from, to));
  if (it == routes_.end()) {
    throw std::logic_error("network::transfer: no route between " + nodes_[from].name +
                           " and " + nodes_[to].name);
  }
  const route_state& route = it->second;
  // Eager reservation: claim each link in order; store-and-forward.
  sim_time t = loop_.now();
  for (link_id l : route.links) {
    link_state& link = links_[l];
    const sim_time start = std::max(t, link.free_at);
    const sim_time finish = start + static_cast<double>(bytes) / link.bytes_per_second;
    link.free_at = finish;
    link.total_bytes += bytes;
    t = finish;
  }
  t += route.latency;
  loop_.schedule_at(t, std::move(done));
}

void network::run_cpu(node_id n, double seconds, std::function<void()> done) {
  if (n >= nodes_.size()) throw std::invalid_argument("network::run_cpu: unknown node");
  if (seconds < 0) throw std::invalid_argument("network::run_cpu: negative duration");
  auto& cores = nodes_[n].core_free;
  auto earliest = std::min_element(cores.begin(), cores.end());
  const sim_time start = std::max(loop_.now(), *earliest);
  const sim_time finish = start + seconds;
  *earliest = finish;
  loop_.schedule_at(finish, std::move(done));
}

double network::route_latency(node_id a, node_id b) const {
  if (a == b) return 0.0;
  const auto it = routes_.find(route_key(a, b));
  if (it == routes_.end()) {
    throw std::logic_error("network::route_latency: no route");
  }
  return it->second.latency;
}

double network::route_latency_or(node_id a, node_id b, double fallback) const {
  if (a == b) return 0.0;
  const auto it = routes_.find(route_key(a, b));
  return it == routes_.end() ? fallback : it->second.latency;
}

bool network::has_route(node_id a, node_id b) const {
  return a == b || routes_.contains(route_key(a, b));
}

const std::string& network::node_name(node_id n) const {
  if (n >= nodes_.size()) throw std::invalid_argument("network::node_name: unknown node");
  return nodes_[n].name;
}

std::uint64_t network::link_bytes(link_id l) const {
  if (l >= links_.size()) throw std::invalid_argument("network::link_bytes: unknown link");
  return links_[l].total_bytes;
}

}  // namespace nakika::sim
