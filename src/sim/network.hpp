// Simulated network: nodes with CPU service queues, shared links with finite
// bandwidth, and routes composed of links plus propagation latency. Replaces
// the paper's PlanetLab testbed; the SIMM wide-area and constrained-WAN
// experiments are topologies over this model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_loop.hpp"

namespace nakika::sim {

using node_id = std::uint32_t;
using link_id = std::uint32_t;

class network {
 public:
  explicit network(event_loop& loop) : loop_(loop) {}

  // --- topology construction ---
  node_id add_node(std::string name, int cores = 1);
  // A link is a shared capacity: concurrent transfers queue on it.
  link_id add_link(double bytes_per_second);
  // Declares the (symmetric) route between two nodes: one-way propagation
  // latency plus the ordered set of shared links traversed.
  void set_route(node_id a, node_id b, double latency_seconds,
                 std::vector<link_id> links = {});

  // --- traffic ---
  // Moves `bytes` from `from` to `to`; `done` fires at delivery time.
  // Store-and-forward across each shared link, so a 8 Mbps bottleneck shared
  // by 160 clients behaves like one. Throws std::logic_error when no route
  // exists.
  void transfer(node_id from, node_id to, std::size_t bytes, std::function<void()> done);

  // Occupies one CPU core on `n` for `seconds`, FIFO across the node's
  // cores; `done` fires when the work completes.
  void run_cpu(node_id n, double seconds, std::function<void()> done);

  // One-way latency of the route (ignoring bandwidth); used by the overlay's
  // RTT-based clustering. Throws std::logic_error when no route exists.
  //
  // Thread-safety: once the topology is built (no more add_node / add_link /
  // set_route), the route queries below are read-only and safe to call from
  // concurrent worker threads — the threaded peer transport and the DHT's
  // synchronous walk use them to account virtual latency without the loop.
  [[nodiscard]] double route_latency(node_id a, node_id b) const;
  // Non-throwing variant for latency *accounting*: `fallback` when unrouted.
  [[nodiscard]] double route_latency_or(node_id a, node_id b, double fallback = 0.0) const;
  [[nodiscard]] bool has_route(node_id a, node_id b) const;

  [[nodiscard]] const std::string& node_name(node_id n) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] event_loop& loop() { return loop_; }

  // Total bytes ever offered to each link; lets benches report bandwidth use.
  [[nodiscard]] std::uint64_t link_bytes(link_id l) const;

 private:
  struct node_state {
    std::string name;
    std::vector<sim_time> core_free;  // per-core next-free times
  };
  struct link_state {
    double bytes_per_second;
    sim_time free_at = 0.0;
    std::uint64_t total_bytes = 0;
  };
  struct route_state {
    double latency;
    std::vector<link_id> links;
  };

  [[nodiscard]] static std::uint64_t route_key(node_id a, node_id b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return lo << 32 | hi;
  }

  event_loop& loop_;
  std::vector<node_state> nodes_;
  std::vector<link_state> links_;
  std::unordered_map<std::uint64_t, route_state> routes_;
};

}  // namespace nakika::sim
