#include "sim/topology.hpp"

#include <stdexcept>

namespace nakika::sim {

namespace {
constexpr double lan_bandwidth = 12.5e6;  // 100 Mbit/s in bytes/s
constexpr double lan_latency = 0.0002;    // 0.2 ms one-way
}  // namespace

three_tier build_lan(network& net) {
  three_tier t;
  t.client = net.add_node("client");
  t.proxy = net.add_node("proxy");
  t.origin = net.add_node("origin");
  // Switched Ethernet: each host's NIC is its own capacity.
  const link_id client_nic = net.add_link(lan_bandwidth);
  const link_id proxy_nic = net.add_link(lan_bandwidth);
  const link_id origin_nic = net.add_link(lan_bandwidth);
  net.set_route(t.client, t.proxy, lan_latency, {client_nic, proxy_nic});
  net.set_route(t.client, t.origin, lan_latency, {client_nic, origin_nic});
  net.set_route(t.proxy, t.origin, lan_latency, {proxy_nic, origin_nic});
  return t;
}

three_tier build_constrained_wan(network& net) {
  three_tier t;
  t.client = net.add_node("client");
  t.proxy = net.add_node("proxy");
  t.origin = net.add_node("origin");
  const link_id client_nic = net.add_link(lan_bandwidth);
  const link_id proxy_nic = net.add_link(lan_bandwidth);
  // The paper inserts "an artificial network delay of 80 ms and bandwidth cap
  // of 8 Mbps between the server on one side and the proxy and clients on the
  // other side": one shared bottleneck in front of the origin.
  const link_id bottleneck = net.add_link(1.0e6);  // 8 Mbit/s
  net.set_route(t.client, t.proxy, lan_latency, {client_nic, proxy_nic});
  net.set_route(t.client, t.origin, 0.080, {client_nic, bottleneck});
  net.set_route(t.proxy, t.origin, 0.080, {proxy_nic, bottleneck});
  return t;
}

geo_deployment build_geo(network& net, int sites_per_region,
                         double host_bandwidth_bytes_per_sec) {
  if (sites_per_region < 1) {
    throw std::invalid_argument("build_geo: sites_per_region must be >= 1");
  }
  // One-way latencies between regions, seconds.
  const double intra_region = 0.010;
  const double east_west = 0.035;
  const double east_asia = 0.090;
  const double west_asia = 0.060;
  const double site_local = 0.002;  // client to its nearby proxy

  auto region_latency = [&](const std::string& a, const std::string& b) {
    if (a == b) return intra_region;
    if ((a == "us-east" && b == "us-west") || (a == "us-west" && b == "us-east")) {
      return east_west;
    }
    if ((a == "us-east" && b == "asia") || (a == "asia" && b == "us-east")) {
      return east_asia;
    }
    return west_asia;
  };

  geo_deployment g;
  g.origin = net.add_node("origin-ny");
  const link_id origin_nic = net.add_link(host_bandwidth_bytes_per_sec);

  struct host_links {
    link_id client_nic;
    link_id proxy_nic;
  };
  std::vector<host_links> nics;

  const char* regions[] = {"us-east", "us-west", "asia"};
  for (const char* region : regions) {
    for (int i = 0; i < sites_per_region; ++i) {
      geo_site site;
      site.region = region;
      const std::string suffix = std::string(region) + "-" + std::to_string(i);
      site.client = net.add_node("client-" + suffix);
      site.proxy = net.add_node("proxy-" + suffix);
      const link_id client_nic = net.add_link(host_bandwidth_bytes_per_sec);
      const link_id proxy_nic = net.add_link(host_bandwidth_bytes_per_sec);
      net.set_route(site.client, site.proxy, site_local, {client_nic, proxy_nic});
      net.set_route(site.client, g.origin, region_latency(region, "us-east"),
                    {client_nic, origin_nic});
      net.set_route(site.proxy, g.origin, region_latency(region, "us-east"),
                    {proxy_nic, origin_nic});
      g.sites.push_back(site);
      nics.push_back({client_nic, proxy_nic});
    }
  }

  // Full proxy mesh (the overlay needs any-to-any) and client access to
  // remote proxies (redirection may send a client anywhere).
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    for (std::size_t j = i + 1; j < g.sites.size(); ++j) {
      const double lat = region_latency(g.sites[i].region, g.sites[j].region);
      net.set_route(g.sites[i].proxy, g.sites[j].proxy, lat,
                    {nics[i].proxy_nic, nics[j].proxy_nic});
      net.set_route(g.sites[i].client, g.sites[j].proxy, lat,
                    {nics[i].client_nic, nics[j].proxy_nic});
      net.set_route(g.sites[i].proxy, g.sites[j].client, lat,
                    {nics[i].proxy_nic, nics[j].client_nic});
    }
  }
  return g;
}

}  // namespace nakika::sim
