// Multi-threaded throughput of the sharded http_cache: aggregate get/put
// ops/sec at 1/2/4/8 worker threads. The cache shards by URL hash with one
// mutex per shard, so aggregate throughput should scale with threads until
// core count or shard contention bounds it. Reports per-workload ops/sec and
// speedup relative to one thread.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/http_cache.hpp"
#include "util/random.hpp"

namespace nakika {
namespace {

constexpr std::size_t k_url_space = 4096;
constexpr std::size_t k_ops_per_thread = 200'000;
constexpr std::size_t k_capacity = 64 * 1024 * 1024;
constexpr std::size_t k_shards = 64;

std::string url_for(std::size_t i) { return "http://bench.example/obj/" + std::to_string(i); }

http::response small_body() {
  return http::make_response(200, "application/octet-stream",
                             util::make_body(std::string(1024, 'x')));
}

// Runs `threads` workers each doing k_ops_per_thread ops with `put_fraction`
// of puts (rest gets), returns aggregate ops/sec.
double run_workload(std::size_t threads, double put_fraction) {
  cache::http_cache c(k_capacity, k_shards);
  // Warm the cache so the get path mostly hits.
  for (std::size_t i = 0; i < k_url_space; ++i) {
    c.put_with_expiry(url_for(i), small_body(), 1'000'000'000, 0);
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::rng rng{0x853c49e6748fea9bull + t * 0x9e3779b9ull};
      const http::response body = small_body();
      for (std::size_t op = 0; op < k_ops_per_thread; ++op) {
        const std::string url = url_for(rng.next(k_url_space));
        if (rng.next_double() < put_fraction) {
          c.put_with_expiry(url, body, 1'000'000'000, 0);
        } else {
          (void)c.get(url, 1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(threads * k_ops_per_thread) / elapsed.count();
}

}  // namespace
}  // namespace nakika

int main(int argc, char** argv) {
  using namespace nakika;
  bench::json_reporter json("bench_cache_concurrent", argc, argv);
  bench::print_header(
      "Sharded HTTP cache: concurrent throughput",
      "scaling harness for the ROADMAP north star (no paper counterpart)");
  std::printf("%zu shards, %zu URLs, %zu ops/thread, %u hardware threads\n\n", k_shards,
              k_url_space, k_ops_per_thread, std::thread::hardware_concurrency());

  struct workload {
    const char* name;
    double put_fraction;
  };
  const workload workloads[] = {{"get-heavy (95/5)", 0.05},
                                {"mixed (70/30)", 0.30},
                                {"put-heavy (30/70)", 0.70}};
  const std::size_t thread_counts[] = {1, 2, 4, 8};

  bench::print_row("threads", {"ops/sec", "Mops/s", "vs 1 thread"});
  for (const auto& w : workloads) {
    std::printf("-- %s\n", w.name);
    double base = 0.0;
    for (const std::size_t threads : thread_counts) {
      const double ops = run_workload(threads, w.put_fraction);
      if (threads == 1) base = ops;
      bench::print_row(std::to_string(threads),
                       {bench::num(ops, 0), bench::num(ops / 1e6, 2),
                        bench::num(ops / base, 2) + "x"});
      json.add(std::string(w.name) + "/threads=" + std::to_string(threads), "ops_per_second",
               ops);
    }
  }
  return 0;
}
