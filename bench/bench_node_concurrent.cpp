// End-to-end requests/sec of a Na Kika node in worker mode at 1/2/4/8
// workers, over three workloads:
//   cache-hit     every request served from the sharded content cache
//   script-heavy  every request runs the site's onResponse handler (VM)
//   pages         every request renders an .nkp page (uncacheable, so each
//                 one compiles + executes the page policy)
// Reports aggregate req/s, speedup vs one worker, and the node's own
// telemetry percentiles (p50/p99/p999 end-to-end latency from the span
// histograms). Speedup is only meaningful on multi-core runners; on a single
// hardware thread the numbers degenerate to ~1x (the harness prints the core
// count so results are interpretable). `--smoke` shrinks the run for CI: it
// validates the worker path end to end (every response checked) without
// measuring. `--gate` runs the telemetry overhead gate instead: cache-hit
// throughput with telemetry on must stay within 3% of telemetry off
// (best of 3 each), the CI bound on the tentpole's hot-path cost. Adding
// `--min-speedup <x>` to `--gate` also runs the scaling gate: cache-hit
// throughput at 4 workers must be at least x times the 1-worker throughput
// (best of 3 each). The scaling gate only arms on runners with >= 4 hardware
// threads — on smaller machines speedup degenerates to ~1x by construction,
// so it reports SKIPPED and passes.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proxy/deployment.hpp"

namespace nakika {
namespace {

constexpr std::size_t k_hot_urls = 256;

struct bench_env {
  sim::event_loop loop;
  std::unique_ptr<sim::network> net;
  std::unique_ptr<proxy::origin_server> origin;
  std::unique_ptr<proxy::nakika_node> node;

  explicit bench_env(std::size_t workers, std::size_t queue_capacity, bool telemetry = true) {
    net = std::make_unique<sim::network>(loop);
    const sim::node_id origin_host = net->add_node("origin");
    const sim::node_id proxy_host = net->add_node("proxy");
    net->set_route(origin_host, proxy_host, 0.0005);
    origin = std::make_unique<proxy::origin_server>(*net, origin_host);

    for (std::size_t i = 0; i < k_hot_urls; ++i) {
      origin->add_static_text("hot.org", "/obj/" + std::to_string(i), "text/plain",
                              std::string(1024, 'h'), 36000);
    }
    origin->add_static_text("scripted.org", "/nakika.js", "application/javascript", R"JS(
      var p = new Policy();
      p.url = [ "scripted.org" ];
      p.onResponse = function () {
        var n = 0;
        for (var i = 0; i < 2000; i++) { n += i * i; }
        Response.setHeader("X-Work", "" + n);
      };
      p.register();
    )JS",
                            36000);
    for (std::size_t i = 0; i < k_hot_urls; ++i) {
      origin->add_static_text("scripted.org", "/doc/" + std::to_string(i), "text/plain",
                              std::string(512, 's'), 36000);
    }
    // Pages: a dynamic, uncacheable .nkp resource -> rendered per request.
    origin->add_dynamic("pages.org", "/page", [](const http::request& r) {
      proxy::origin_server::dynamic_result out;
      out.response = http::make_response(
          200, "text/nkp",
          util::make_body("Rendered: <?nkp var n = 0; for (var i = 0; i < 200; i++) "
                          "{ n += i; } Response.write(n); ?> for " +
                          r.url.path()));
      out.response.headers.set("Cache-Control", "no-store");
      return out;
    });

    proxy::node_config cfg;
    cfg.workers = workers;
    cfg.queue_capacity = queue_capacity;
    cfg.resource_controls = false;  // measure the execution path, not admission
    cfg.telemetry = telemetry;
    proxy::origin_server* raw = origin.get();
    node = std::make_unique<proxy::nakika_node>(
        *net, proxy_host,
        [raw](const std::string&) -> proxy::http_endpoint* { return raw; },
        std::move(cfg));
  }
};

enum class workload { cache_hit, script_heavy, pages };

std::string url_for(workload w, std::size_t i) {
  switch (w) {
    case workload::cache_hit:
      return "http://hot.org/obj/" + std::to_string(i % k_hot_urls);
    case workload::script_heavy:
      return "http://scripted.org/doc/" + std::to_string(i % k_hot_urls);
    case workload::pages:
      return "http://pages.org/page";
  }
  return "";
}

// Submits `total` requests with a bounded in-flight window (so the bench
// exercises the queue without tripping backpressure rejections) and returns
// aggregate requests/sec. `ok` counts verified-correct responses;
// `counters_out` (optional) receives the node's final counter snapshot so
// the harness can report single-flight coalescing.
double run_workload(workload w, std::size_t workers, std::size_t total, std::size_t* ok,
                    util::run_counters* counters_out = nullptr,
                    obs::histogram_summary* latency_out = nullptr, bool telemetry = true) {
  bench_env env(workers, /*queue_capacity=*/512, telemetry);

  // Warm: populate the cache (cache-hit) and the script/chunk caches.
  {
    std::atomic<std::size_t> warm_done{0};
    for (std::size_t i = 0; i < k_hot_urls; ++i) {
      http::request r;
      r.url = http::url::parse(url_for(w, i));
      r.client_ip = "10.0.0.1";
      env.node->handle(r, [&](http::response) { warm_done.fetch_add(1); });
    }
    env.node->drain();
  }

  std::atomic<std::size_t> good{0};
  std::atomic<std::size_t> done{0};
  const auto start = std::chrono::steady_clock::now();
  std::size_t in_flight_cap = 256;
  for (std::size_t i = 0; i < total; ++i) {
    while (i - done.load(std::memory_order_acquire) >= in_flight_cap) {
      std::this_thread::yield();
    }
    http::request r;
    r.url = http::url::parse(url_for(w, i));
    r.client_ip = "10.0.0.1";
    env.node->handle(r, [&](http::response resp) {
      if (resp.status == 200) good.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  env.node->drain();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (ok != nullptr) *ok = good.load();
  if (counters_out != nullptr) *counters_out = env.node->counters();
  if (latency_out != nullptr) *latency_out = env.node->stage_latency(obs::stage::total);
  return static_cast<double>(total) / elapsed.count();
}

// Telemetry overhead gate (CI): cache-hit throughput, telemetry on vs off,
// best of `reps` runs each to damp scheduler noise. Returns the on/off ratio.
double telemetry_overhead_ratio(std::size_t workers, std::size_t total, int reps) {
  double best_off = 0.0;
  double best_on = 0.0;
  for (int i = 0; i < reps; ++i) {
    std::size_t ok = 0;
    best_off = std::max(best_off, run_workload(workload::cache_hit, workers, total, &ok,
                                               nullptr, nullptr, /*telemetry=*/false));
    best_on = std::max(best_on, run_workload(workload::cache_hit, workers, total, &ok,
                                             nullptr, nullptr, /*telemetry=*/true));
  }
  std::printf("cache-hit req/s: telemetry off %.0f, on %.0f (best of %d)\n", best_off,
              best_on, reps);
  return best_off > 0.0 ? best_on / best_off : 0.0;
}

// Scaling gate (CI, multi-core runners only): cache-hit throughput at 4
// workers vs 1 worker, best of `reps` runs each. Returns the speedup ratio.
double scaling_speedup(std::size_t total, int reps) {
  double best_1 = 0.0;
  double best_4 = 0.0;
  for (int i = 0; i < reps; ++i) {
    std::size_t ok = 0;
    best_1 = std::max(best_1, run_workload(workload::cache_hit, 1, total, &ok));
    best_4 = std::max(best_4, run_workload(workload::cache_hit, 4, total, &ok));
  }
  std::printf("cache-hit req/s: 1 worker %.0f, 4 workers %.0f (best of %d)\n", best_1,
              best_4, reps);
  return best_1 > 0.0 ? best_4 / best_1 : 0.0;
}

}  // namespace
}  // namespace nakika

int main(int argc, char** argv) {
  using namespace nakika;
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  bench::json_reporter json("bench_node_concurrent", argc, argv);

  if (bench::has_flag(argc, argv, "--gate")) {
    bench::print_header("Telemetry overhead gate",
                        "telemetry-on cache-hit throughput within 3% of telemetry-off");
    const double ratio = telemetry_overhead_ratio(/*workers=*/4, /*total=*/20'000, /*reps=*/3);
    std::printf("telemetry on/off throughput ratio: %.3f (gate: >= 0.970)\n", ratio);
    json.add("gate/workers=4", "telemetry_throughput_ratio", ratio);
    if (ratio < 0.97) {
      std::printf("FAIL: telemetry overhead exceeds 3%%\n");
      return 1;
    }
    if (const char* arg = bench::flag_value(argc, argv, "--min-speedup")) {
      const double min_speedup = std::strtod(arg, nullptr);
      const unsigned cores = std::thread::hardware_concurrency();
      bench::print_header("Multi-core scaling gate",
                          "4-worker cache-hit throughput vs 1 worker");
      if (cores < 4) {
        std::printf("SKIPPED: %u hardware threads (< 4), speedup is not meaningful here\n",
                    cores);
      } else {
        const double speedup = scaling_speedup(/*total=*/20'000, /*reps=*/3);
        std::printf("4-worker speedup: %.2fx (gate: >= %.2fx)\n", speedup, min_speedup);
        json.add("gate/scaling", "speedup_4_vs_1_workers", speedup);
        if (speedup < min_speedup) {
          std::printf("FAIL: scaling below --min-speedup\n");
          return 1;
        }
      }
    }
    std::printf("PASS\n");
    return 0;
  }

  bench::print_header(
      "Multi-worker node: end-to-end requests/sec",
      "scaling harness for the ROADMAP north star (no paper counterpart)");
  std::printf("%u hardware threads; speedup is only meaningful on multi-core runners\n\n",
              std::thread::hardware_concurrency());

  struct spec {
    const char* name;
    workload w;
    std::size_t total;
    std::size_t smoke_total;
  };
  const spec specs[] = {
      {"cache-hit", workload::cache_hit, 40'000, 1'000},
      {"script-heavy", workload::script_heavy, 8'000, 500},
      {"pages", workload::pages, 4'000, 300},
  };
  const std::size_t worker_counts[] = {1, 2, 4, 8};

  bool all_ok = true;
  for (const spec& s : specs) {
    const std::size_t total = smoke ? s.smoke_total : s.total;
    std::printf("-- %s (%zu requests)\n", s.name, total);
    bench::print_row("workers", {"req/s", "vs 1 worker", "p50 ms", "p99 ms", "p999 ms", "ok"});
    double base = 0.0;
    for (const std::size_t workers : worker_counts) {
      std::size_t ok = 0;
      util::run_counters counters;
      obs::histogram_summary latency;
      const double rps = run_workload(s.w, workers, total, &ok, &counters, &latency);
      if (workers == 1) base = rps;
      if (ok != total) all_ok = false;
      bench::print_row(std::to_string(workers),
                       {bench::num(rps, 0), bench::num(rps / base, 2) + "x",
                        bench::ms(latency.p50, 3), bench::ms(latency.p99, 3),
                        bench::ms(latency.p999, 3),
                        std::to_string(ok) + "/" + std::to_string(total)});
      const std::string config = std::string(s.name) + "/workers=" + std::to_string(workers);
      json.add(config, "requests_per_second", rps);
      json.add(config, "speedup_vs_1_worker", base > 0 ? rps / base : 0.0);
      // Single-flight effectiveness on the warm-up misses: how many requests
      // coalesced onto an in-flight fetch instead of refetching.
      json.add(config, "coalesced_requests", static_cast<double>(counters.coalesced));
      // End-to-end latency from the node's own span histograms (telemetry
      // tentpole): the same numbers telemetry_json() exports.
      json.add(config, "latency_p50_ms", latency.p50 * 1000.0);
      json.add(config, "latency_p99_ms", latency.p99 * 1000.0);
      json.add(config, "latency_p999_ms", latency.p999 * 1000.0);
    }
  }
  if (!all_ok) {
    std::printf("\nFAIL: some responses were not 200\n");
    return 1;
  }
  std::printf("\nall responses verified\n");
  return 0;
}
