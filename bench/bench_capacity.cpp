// Reproduces §5.1's capacity comparison: closed-loop load generators fetch
// the 2,096-byte static page in a tight loop from (a) a plain Apache-style
// proxy and (b) a Na Kika node in the Match-1 configuration.
//
// Paper: the Na Kika node reaches capacity with 30 clients at 294 rps; the
// plain proxy reaches capacity with 90 clients at 603 rps — the scripting
// pipeline roughly halves single-node throughput.
#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/clients.hpp"

namespace {

using namespace nakika;

constexpr const char* page_host = "www.google.example";

const char* match1_script = R"JS(
var m = new Policy();
m.url = [ "www.google.example" ];
m.onRequest = function() {};
m.onResponse = function() {};
m.register();
)JS";

const char* admin_wall = R"JS(
var wall = new Policy();
wall.onRequest = function() {};
wall.onResponse = function() {};
wall.register();
)JS";

double run_capacity(bool nakika, std::size_t clients, double duration_s) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host(page_host, origin);
  origin.add_static_text(page_host, "/", "text/html", std::string(2096, 'g'), 36000);
  origin.add_static_text(page_host, "/nakika.js", "application/javascript", match1_script,
                         36000);

  proxy::http_endpoint* endpoint = nullptr;
  if (nakika) {
    proxy::node_config cfg;
    cfg.resource_controls = false;
    cfg.clientwall_source = admin_wall;
    cfg.serverwall_source = admin_wall;
    endpoint = &dep.create_node(topo.proxy, std::move(cfg));
  } else {
    endpoint = &dep.create_plain_proxy(topo.proxy);
  }

  workload::measurement m;
  workload::load_driver driver(
      net, topo.client, [&](std::size_t) { return endpoint; },
      [&](std::size_t, std::size_t) -> std::optional<http::request> {
        http::request r;
        r.url = http::url::parse(std::string("http://") + page_host + "/");
        r.client_ip = "10.0.0.1";
        return r;
      });
  workload::driver_options opts;
  opts.clients = clients;
  opts.deadline_seconds = duration_s;
  opts.ramp_seconds = 0.2;
  driver.start(opts, m);
  loop.run_until(duration_s);
  m.set_window(0.0, duration_s);
  return m.requests_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_capacity", argc, argv);
  print_header("Capacity — plain proxy vs Na Kika Match-1 (warm cache)",
               "Na Kika (NSDI '06) §5.1 (paper: Match-1 294 rps @30 clients, "
               "plain proxy 603 rps @90 clients)");

  const double duration = 10.0;  // virtual seconds
  print_row("Configuration", {"Clients", "Requests/s"});
  print_row("-------------", {"-------", "----------"});

  double proxy_90 = 0;
  double nakika_30 = 0;
  for (const std::size_t clients : {30u, 90u}) {
    const double rps = run_capacity(false, clients, duration);
    if (clients == 90) proxy_90 = rps;
    print_row("Proxy", {std::to_string(clients), num(rps, 0)});
    json.add("proxy/clients=" + std::to_string(clients), "requests_per_second", rps);
  }
  for (const std::size_t clients : {30u, 90u}) {
    const double rps = run_capacity(true, clients, duration);
    if (clients == 30) nakika_30 = rps;
    print_row("Match-1", {std::to_string(clients), num(rps, 0)});
    json.add("match1/clients=" + std::to_string(clients), "requests_per_second", rps);
  }

  std::printf("\nNa Kika/proxy capacity ratio: %.2f (paper: 294/603 = 0.49)\n",
              proxy_90 > 0 ? nakika_30 / proxy_90 : 0.0);
  json.add("summary", "nakika_proxy_capacity_ratio", proxy_90 > 0 ? nakika_30 / proxy_90 : 0.0);
  std::printf("shape check: the scripting pipeline costs roughly half the\n"
              "plain proxy's single-node throughput.\n");
  return 0;
}
