// Reproduces §5.4: the three extensions built on Na Kika — electronic
// annotations layered over another site, image transcoding for small
// devices, and blacklist-based content blocking with dynamically generated
// policy code. Each is executed end to end on a simulated node and its
// script size is reported against the paper's line counts (annotations 50,
// transcoding 80, blacklist 70; Na Kika Pages is a ~60-line layer).
#include <algorithm>

#include "bench_common.hpp"
#include "media/image.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "util/strings.hpp"

namespace {

using namespace nakika;

int count_loc(const std::string& source) {
  int lines = 0;
  for (const auto& line : util::split(source, '\n')) {
    const auto t = util::trim(line);
    if (!t.empty() && !t.starts_with("//")) ++lines;
  }
  return lines;
}

// --- extension scripts (also used by the examples) ---------------------------------

const char* annotation_script = R"JS(
// Electronic annotations: interposes on the SIMMs by rewriting requests to
// the original site and injecting note markup into returned HTML.
var notes = new Policy();
notes.url = [ "notes.example.org" ];
notes.onRequest = function() {
  Request.setUrl("http://simms.med.nyu.edu" + Request.path);
};
notes.onResponse = function() {
  var ct = Response.getHeader("Content-Type");
  if (ct == null || ct.indexOf("text/html") != 0) { return; }
  var body = new ByteArray();
  var c = null;
  while (c = Response.read()) { body.append(c); }
  var html = body.toString();
  var stored = HardState.get("note:" + Request.path);
  var note = stored == null ? "" :
    "<div class=\"postit\">" + stored + "</div>";
  html = html.replace("</body>", note + "</body>");
  Response.write(html);
};
notes.register();
var save = new Policy();
save.url = [ "notes.example.org/annotate" ];
save.method = [ "POST" ];
save.onRequest = function() {
  HardState.put("note:" + Request.query, "annotated at " + System.time());
  Request.respond(200, "text/plain", "saved");
};
save.register();
)JS";

const char* transcoding_script = R"JS(
// Image transcoding for small devices (generalizes paper Fig. 2): scales
// images to fit a phone screen and caches the transformed content.
var phone = new Policy();
phone.headers = { "User-Agent": "Nokia|SonyEricsson" };
phone.onResponse = function() {
  var type = ImageTransformer.type(Response.contentType);
  if (type == null) { return; }
  var cached = Cache.get("http://transcode/" + Request.url);
  if (cached != null) {
    Response.setHeader("Content-Type", cached.contentType);
    Response.write(cached.body);
    return;
  }
  var body = new ByteArray();
  var c = null;
  while (c = Response.read()) { body.append(c); }
  var dim = ImageTransformer.dimensions(body, type);
  if (dim.x > 176 || dim.y > 208) {
    var img = ImageTransformer.transform(body, type, "jpeg", 176, 208);
    Response.setHeader("Content-Type", "image/jpeg");
    Response.setHeader("Content-Length", img.length);
    Response.write(img);
    Cache.put("http://transcode/" + Request.url,
              { contentType: "image/jpeg", body: img, ttl: 600 });
  }
};
phone.register();
)JS";

// Stage 1 of the blacklist extension: fetches the blacklist and generates
// the policy code for stage 2 (the paper's dynamically created script).
const char* blacklist_generator_script = R"JS(
var gen = new Policy();
gen.onRequest = function() {
  var cached = Cache.get("http://nakika.net/generated-blacklist.js");
  if (cached != null) { return; }
  var list = Fetch.fetch("http://admin.example.org/blacklist.txt");
  var urls = list.body.toString().split("\n");
  var code = "";
  for (var i = 0; i < urls.length; i++) {
    if (urls[i].length == 0) { continue; }
    code += "var b" + i + " = new Policy();\n";
    code += "b" + i + ".url = [ \"" + urls[i] + "\" ];\n";
    code += "b" + i + ".onRequest = function() { Request.terminate(403); };\n";
    code += "b" + i + ".register();\n";
  }
  Cache.put("http://nakika.net/generated-blacklist.js",
            { contentType: "application/javascript", body: code, ttl: 300 });
};
gen.nextStages = [ "http://nakika.net/generated-blacklist.js" ];
gen.register();
)JS";

// --- end-to-end checks ----------------------------------------------------------------

bool check_transcoding() {
  sim::event_loop loop;
  sim::network net(loop);
  const auto topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("pics.example.org", origin);
  origin.add_static(
      "pics.example.org", "/large.png", "image/png",
      util::make_body(media::encode(media::make_test_image(640, 480, 3),
                                    media::image_format::png)));
  origin.add_static_text("pics.example.org", "/nakika.js", "application/javascript",
                         transcoding_script);
  proxy::node_config cfg;
  cfg.resource_controls = false;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));

  http::request r;
  r.url = http::url::parse("http://pics.example.org/large.png");
  r.client_ip = "10.0.0.1";
  r.headers.set("User-Agent", "Nokia6600/2.0");
  bool ok = false;
  proxy::forward_request(net, topo.client, node, r, [&](http::response resp) {
    const auto dims = media::read_dimensions(resp.body->span());
    ok = resp.status == 200 && resp.headers.get_or("Content-Type", "") == "image/jpeg" &&
         dims && dims->width <= 176 && dims->height <= 208;
  });
  loop.run();

  // Desktop clients keep the original.
  http::request desktop = r;
  desktop.headers.set("User-Agent", "Mozilla/5.0");
  bool desktop_ok = false;
  proxy::forward_request(net, topo.client, node, desktop, [&](http::response resp) {
    const auto dims = media::read_dimensions(resp.body->span());
    desktop_ok = resp.status == 200 && dims && dims->width == 640;
  });
  loop.run();
  return ok && desktop_ok;
}

bool check_blacklist() {
  sim::event_loop loop;
  sim::network net(loop);
  const auto topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("admin.example.org", origin);
  dep.map_host("evil.example.org", origin);
  dep.map_host("fine.example.org", origin);
  origin.add_static_text("admin.example.org", "/blacklist.txt", "text/plain",
                         "evil.example.org\nworse.example.org\n");
  origin.add_static_text("evil.example.org", "/", "text/html", "illegal");
  origin.add_static_text("fine.example.org", "/", "text/html", "legal");

  proxy::node_config cfg;
  cfg.resource_controls = false;
  cfg.clientwall_source = blacklist_generator_script;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));

  auto status_of = [&](const std::string& url) {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    int status = 0;
    proxy::forward_request(net, topo.client, node, r,
                           [&](http::response resp) { status = resp.status; });
    loop.run();
    return status;
  };
  return status_of("http://evil.example.org/") == 403 &&
         status_of("http://fine.example.org/") == 200;
}

bool check_annotations() {
  sim::event_loop loop;
  sim::network net(loop);
  const auto topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("notes.example.org", origin);
  dep.map_host("simms.med.nyu.edu", origin);
  origin.add_static_text("notes.example.org", "/nakika.js", "application/javascript",
                         annotation_script);
  origin.add_static_text("simms.med.nyu.edu", "/case1", "text/html",
                         "<html><body>content</body></html>");
  proxy::node_config cfg;
  cfg.resource_controls = false;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));

  // Save an annotation, then fetch the page through the annotating site.
  http::request post;
  post.method = http::method::post;
  post.url = http::url::parse("http://notes.example.org/annotate?/case1");
  post.client_ip = "10.0.0.1";
  int post_status = 0;
  proxy::forward_request(net, topo.client, node, post,
                         [&](http::response resp) { post_status = resp.status; });
  loop.run();

  http::request get;
  get.url = http::url::parse("http://notes.example.org/case1");
  get.client_ip = "10.0.0.1";
  bool injected = false;
  proxy::forward_request(net, topo.client, node, get, [&](http::response resp) {
    injected = resp.status == 200 &&
               resp.body->view().find("class=\"postit\"") != std::string_view::npos &&
               resp.body->view().find("content") != std::string_view::npos;
  });
  loop.run();
  return post_status == 200 && injected;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_extensions", argc, argv);
  print_header("Extensions — annotations, transcoding, blacklist blocking",
               "Na Kika (NSDI '06) §5.4 (paper LoC: annotations 50 (+180 "
               "reused), transcoding 80, blacklist 70)");

  print_row("Extension", {"Script LoC", "Works"});
  print_row("---------", {"----------", "-----"});
  const bool annotations_ok = check_annotations();
  print_row("electronic annotations",
            {std::to_string(count_loc(annotation_script)), annotations_ok ? "yes" : "NO"});
  const bool transcode_ok = check_transcoding();
  print_row("image transcoding",
            {std::to_string(count_loc(transcoding_script)), transcode_ok ? "yes" : "NO"});
  const bool blacklist_ok = check_blacklist();
  print_row("blacklist blocking",
            {std::to_string(count_loc(blacklist_generator_script)),
             blacklist_ok ? "yes" : "NO"});

  json.add("annotations", "works", annotations_ok ? 1.0 : 0.0);
  json.add("transcoding", "works", transcode_ok ? 1.0 : 0.0);
  json.add("blacklist", "works", blacklist_ok ? 1.0 : 0.0);
  std::printf(
      "\nshape checks: each extension is a few dozen lines of script, uses\n"
      "predicate selection + dynamically scheduled stages, and runs without\n"
      "modifying the platform — the paper's extensibility claim.\n");
  return (annotations_ok && transcode_ok && blacklist_ok) ? 0 : 1;
}
