// Reproduces Figure 7: CDFs of client-perceived latency for HTML content in
// the SIMMs under the wide-area deployment — single origin server in New
// York vs Na Kika proxies near 12 geographically distributed client sites
// (US East Coast, West Coast, Asia), with cold and warm caches, for 120,
// 180, and 240 clients. Also reports the paper's video-bandwidth metrics.
//
// Paper anchors @240 clients: 90th-percentile HTML latency 60.1 s (single
// server), 31.6 s (Na Kika cold), 9.7 s (warm); fraction of multimedia
// accesses sustaining the 140 kbps video bitrate 0% / 11.5% / 80.3%; video
// failure rates 60.0% / 5.6% / 1.9%.
#include <memory>

#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/simm.hpp"

namespace {

using namespace nakika;

workload::simm_config scaled_config() {
  workload::simm_config cfg;
  cfg.modules = 3;
  cfg.pages_per_module = 10;
  cfg.videos_per_module = 4;
  cfg.video_bytes = 1024 * 1024;
  cfg.images_per_page = 1;
  cfg.video_probability = 0.5;
  return cfg;
}

struct run_output {
  util::sample_set html_latency;
  double video_ok_fraction = 0;   // >= 140 kbps
  double video_failures = 0;
};

constexpr double video_bitrate_bps = 140000.0;
constexpr int requests_per_client = 10;

run_output run_single_server(int total_clients) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 4);  // 12 sites
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host(workload::simm_site::host_name, origin);
  workload::simm_site site(scaled_config());
  site.install_single_server(origin);

  const int per_site = total_clients / static_cast<int>(geo.sites.size());
  auto m = std::make_unique<workload::measurement>();
  std::vector<std::unique_ptr<workload::load_driver>> drivers;
  for (std::size_t s = 0; s < geo.sites.size(); ++s) {
    drivers.push_back(std::make_unique<workload::load_driver>(
        net, geo.sites[s].client,
        [&origin](std::size_t) -> proxy::http_endpoint* { return &origin; },
        site.make_generator(false, 100 + s)));
    workload::driver_options opts;
    opts.clients = static_cast<std::size_t>(per_site);
    opts.requests_per_client = requests_per_client;
    opts.ramp_seconds = 2.0;
    drivers.back()->start(opts, *m);
  }
  loop.run();

  run_output out;
  out.html_latency = m->latency_of(workload::content_class::html);
  const auto& video = m->bandwidth_of(workload::content_class::video);
  out.video_ok_fraction = video.count() > 0 ? video.fraction_at_least(video_bitrate_bps) : 0;
  out.video_failures = m->failure_rate();
  return out;
}

run_output run_nakika(int total_clients, bool warm) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 4);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host(workload::simm_site::host_name, origin);
  workload::simm_site site(scaled_config());
  site.install_edge(origin);

  dep.enable_overlay();
  for (const auto& s : geo.sites) {
    proxy::node_config cfg;
    cfg.resource_controls = false;  // isolate the caching/scaling effect
    dep.create_node(s.proxy, std::move(cfg));
  }
  loop.run();  // overlay joins

  util::rng pick_rng(99);
  auto endpoint_for = [&](std::size_t site_index) -> proxy::http_endpoint* {
    // "we direct clients to randomly chosen, but close-by proxies"
    return dep.pick_node(geo.sites[site_index].client, pick_rng);
  };

  if (warm) {
    // A priming pass fills edge caches (the warm-cache configuration).
    auto prime = std::make_unique<workload::measurement>();
    std::vector<std::unique_ptr<workload::load_driver>> prime_drivers;
    for (std::size_t s = 0; s < geo.sites.size(); ++s) {
      prime_drivers.push_back(std::make_unique<workload::load_driver>(
          net, geo.sites[s].client,
          [&, s](std::size_t) { return endpoint_for(s); },
          site.make_generator(true, 500 + s)));
      workload::driver_options opts;
      opts.clients = 4;
      opts.requests_per_client = 3 * requests_per_client;
      prime_drivers.back()->start(opts, *prime);
    }
    loop.run();
  }

  const int per_site = total_clients / static_cast<int>(geo.sites.size());
  auto m = std::make_unique<workload::measurement>();
  std::vector<std::unique_ptr<workload::load_driver>> drivers;
  for (std::size_t s = 0; s < geo.sites.size(); ++s) {
    drivers.push_back(std::make_unique<workload::load_driver>(
        net, geo.sites[s].client, [&, s](std::size_t) { return endpoint_for(s); },
        site.make_generator(true, 100 + s)));
    workload::driver_options opts;
    opts.clients = static_cast<std::size_t>(per_site);
    opts.requests_per_client = requests_per_client;
    opts.ramp_seconds = 2.0;
    drivers.back()->start(opts, *m);
  }
  loop.run();

  run_output out;
  out.html_latency = m->latency_of(workload::content_class::html);
  const auto& video = m->bandwidth_of(workload::content_class::video);
  out.video_ok_fraction = video.count() > 0 ? video.fraction_at_least(video_bitrate_bps) : 0;
  out.video_failures = m->failure_rate();
  return out;
}

void print_cdf(const char* label, util::sample_set& samples) {
  if (samples.count() == 0) return;
  std::printf("  CDF %-28s", label);
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("  p%02.0f=%7.2fs", p, samples.percentile(p));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_fig7_simm_wan", argc, argv);
  print_header("Figure 7 — SIMM wide-area latency CDFs (12 client sites, origin in NY)",
               "Na Kika (NSDI '06) Fig. 7 + §5.2 "
               "(paper @240: p90 60.1s single / 31.6s cold / 9.7s warm; "
               "video >=140kbps 0% / 11.5% / 80.3%)");

  print_row("Configuration",
            {"Clients", "p90 HTML (s)", "video>=140k", "failures"});
  print_row("-------------", {"-------", "------------", "-----------", "--------"});

  struct series_entry {
    std::string label;
    util::sample_set latency;
  };
  std::vector<series_entry> series;

  for (const int clients : {120, 180, 240}) {
    run_output single = run_single_server(clients);
    print_row("single server",
              {std::to_string(clients), num(single.html_latency.percentile(90), 2),
               pct(single.video_ok_fraction), pct(single.video_failures)});
    json.add("single/clients=" + std::to_string(clients), "p90_html_seconds",
             single.html_latency.percentile(90));
    series.push_back({"single/" + std::to_string(clients), std::move(single.html_latency)});

    run_output cold = run_nakika(clients, /*warm=*/false);
    print_row("Na Kika (cold)",
              {std::to_string(clients), num(cold.html_latency.percentile(90), 2),
               pct(cold.video_ok_fraction), pct(cold.video_failures)});
    json.add("cold/clients=" + std::to_string(clients), "p90_html_seconds",
             cold.html_latency.percentile(90));
    series.push_back({"cold/" + std::to_string(clients), std::move(cold.html_latency)});

    run_output warm = run_nakika(clients, /*warm=*/true);
    print_row("Na Kika (warm)",
              {std::to_string(clients), num(warm.html_latency.percentile(90), 2),
               pct(warm.video_ok_fraction), pct(warm.video_failures)});
    json.add("warm/clients=" + std::to_string(clients), "p90_html_seconds",
             warm.html_latency.percentile(90));
    json.add("warm/clients=" + std::to_string(clients), "video_ok_fraction",
             warm.video_ok_fraction);
    series.push_back({"warm/" + std::to_string(clients), std::move(warm.html_latency)});
  }

  std::printf("\nlatency CDFs (HTML accesses):\n");
  for (auto& s : series) {
    print_cdf(s.label.c_str(), s.latency);
  }

  std::printf(
      "\nshape checks: warm < cold < single server on p90 HTML latency at\n"
      "every population; the video-bandwidth fraction rises from ~0%% on the\n"
      "single server to a large majority with warm edge caches.\n");
  return 0;
}
