// Ablation: the decision tree (paper §4, "trades off space for dynamic
// predicate evaluation performance") versus the naive linear scan over all
// registered policies. google-benchmark sweeps the policy count; the tree's
// prefix sharing should flatten the growth that the linear matcher pays.
#include <benchmark/benchmark.h>

#include "bench_gbench_json.hpp"
#include "core/decision_tree.hpp"
#include "core/match_compiler.hpp"
#include "util/random.hpp"

namespace {

using namespace nakika;

core::policy_set build_policies(int count) {
  // Policies share host prefixes (sites with many path-specific policies),
  // the case the tree is designed for.
  core::policy_set set;
  util::rng rng(7);
  const char* hosts[] = {"med.nyu.edu", "law.nyu.edu", "cs.nyu.edu", "pitt.edu"};
  for (int i = 0; i < count; ++i) {
    auto p = std::make_shared<core::policy>();
    const std::string host = hosts[rng.next(4)];
    p->urls.push_back(http::url::parse_lenient(host + "/sec" + std::to_string(i % 16) +
                                               "/leaf" + std::to_string(i)));
    if (rng.chance(0.3)) p->clients.push_back("10.0.0.0/8");
    if (rng.chance(0.2)) p->methods.push_back(http::method::get);
    p->registration_order = static_cast<std::uint64_t>(i);
    set.policies.push_back(std::move(p));
  }
  return set;
}

http::request probe_request() {
  http::request r;
  r.url = http::url::parse("http://www.med.nyu.edu/sec3/leaf3/deep/item.html");
  r.client_ip = "10.1.2.3";
  return r;
}

void linear_match(benchmark::State& state) {
  const core::policy_set set = build_policies(static_cast<int>(state.range(0)));
  const http::request r = probe_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::match_linear(set, r));
  }
}
BENCHMARK(linear_match)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Unit(benchmark::kMicrosecond);

void tree_match(benchmark::State& state) {
  const core::policy_set set = build_policies(static_cast<int>(state.range(0)));
  const core::decision_tree tree = core::decision_tree::build(set);
  const http::request r = probe_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.match(r));
  }
  state.SetLabel(std::to_string(tree.node_count()) + " tree nodes");
}
BENCHMARK(tree_match)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Unit(benchmark::kMicrosecond);

// The decision tree's predicates compiled to bytecode and evaluated by the
// script VM (the production match path for the bytecode engine).
void compiled_match(benchmark::State& state) {
  const core::policy_set set = build_policies(static_cast<int>(state.range(0)));
  const core::decision_tree tree = core::decision_tree::build(set);
  const auto matcher = core::compiled_matcher::build(tree);
  js::context_limits limits;
  limits.heap_bytes = 0;
  limits.ops = 0;
  js::context ctx(limits, js::context::bare_t{});
  const http::request r = probe_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher->match(ctx, r));
  }
  state.SetLabel(std::to_string(matcher->instruction_count()) + " instructions");
}
BENCHMARK(compiled_match)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Unit(benchmark::kMicrosecond);

void tree_build(benchmark::State& state) {
  const core::policy_set set = build_policies(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decision_tree::build(set));
  }
}
BENCHMARK(tree_build)->Arg(10)->Arg(100)->Arg(500)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return nakika::bench::run_gbench_with_json("bench_ablation_matching", argc, argv);
}
