// Reproduces §5.3: a SPECweb99-like workload (80% dynamic requests, 160
// simultaneous connections) served by (a) a single PHP-style server on the
// East Coast and (b) five Na Kika nodes on the West Coast that render the
// dynamic pages at the edge (Na Kika Pages) and manage user registrations in
// replicated hard state.
//
// Paper: PHP server mean response 13.7 s at 10.8 rps; Na Kika (cold cache)
// 4.3 s at 34.3 rps.
#include <memory>

#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/specweb.hpp"

namespace {

using namespace nakika;

struct run_output {
  double mean_response = 0;
  double rps = 0;
  std::size_t replicated_registrations = 0;
};

constexpr int total_connections = 160;
constexpr double run_seconds = 60.0;  // virtual; paper ran 20 minutes

run_output run_php() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 5);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host(workload::specweb_site::host_name, origin);
  workload::specweb_site site;
  site.install_php_server(origin);

  // West-coast clients only, as in the paper.
  std::vector<const sim::geo_site*> west;
  for (const auto& s : geo.sites) {
    if (s.region == "us-west") west.push_back(&s);
  }
  const std::size_t per_site = total_connections / west.size();

  auto m = std::make_unique<workload::measurement>();
  std::vector<std::unique_ptr<workload::load_driver>> drivers;
  for (std::size_t s = 0; s < west.size(); ++s) {
    drivers.push_back(std::make_unique<workload::load_driver>(
        net, west[s]->client,
        [&origin](std::size_t) -> proxy::http_endpoint* { return &origin; },
        site.make_generator(false, 10 + s)));
    workload::driver_options opts;
    opts.clients = per_site;
    opts.deadline_seconds = run_seconds;
    opts.ramp_seconds = 2.0;
    drivers.back()->start(opts, *m);
  }
  loop.run_until(run_seconds);
  m->set_window(0, run_seconds);

  run_output out;
  out.mean_response = m->latency().mean();
  out.rps = m->requests_per_second();
  return out;
}

run_output run_nakika() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 5);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host(workload::specweb_site::host_name, origin);
  workload::specweb_site site;
  site.install_edge(origin);

  std::vector<const sim::geo_site*> west;
  for (const auto& s : geo.sites) {
    if (s.region == "us-west") west.push_back(&s);
  }

  // Five Na Kika nodes near the clients, sharing replicated hard state for
  // user registrations (broadcast/optimistic strategy).
  state::message_bus bus(net);
  std::vector<std::unique_ptr<state::replica>> replicas;
  std::vector<proxy::nakika_node*> nodes;
  const std::string site_key = std::string("http://") + workload::specweb_site::host_name;
  for (std::size_t s = 0; s < west.size(); ++s) {
    proxy::node_config cfg;
    cfg.resource_controls = false;
    proxy::nakika_node& node = dep.create_node(west[s]->proxy, std::move(cfg));
    replicas.push_back(std::make_unique<state::replica>(
        node.store(), bus, west[s]->proxy, "edge-" + std::to_string(s), site_key,
        state::replication_strategy::broadcast));
    node.attach_replica(site_key, replicas.back().get());
    nodes.push_back(&node);
  }

  auto m = std::make_unique<workload::measurement>();
  const std::size_t per_site = total_connections / west.size();
  std::vector<std::unique_ptr<workload::load_driver>> drivers;
  for (std::size_t s = 0; s < west.size(); ++s) {
    drivers.push_back(std::make_unique<workload::load_driver>(
        net, west[s]->client,
        [node = nodes[s]](std::size_t) -> proxy::http_endpoint* { return node; },
        site.make_generator(true, 10 + s)));
    workload::driver_options opts;
    opts.clients = per_site;
    opts.deadline_seconds = run_seconds;
    opts.ramp_seconds = 2.0;
    drivers.back()->start(opts, *m);
  }
  loop.run_until(run_seconds);
  m->set_window(0, run_seconds);

  run_output out;
  out.mean_response = m->latency().mean();
  out.rps = m->requests_per_second();
  // Registrations accepted anywhere must be visible everywhere.
  out.replicated_registrations = nodes[0]->store().site_keys(site_key);
  std::size_t min_keys = out.replicated_registrations;
  for (auto* node : nodes) {
    min_keys = std::min(min_keys, node->store().site_keys(site_key));
  }
  out.replicated_registrations = min_keys;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_specweb_hardstate", argc, argv);
  print_header("SPECweb99-like — PHP single server vs Na Kika with hard state",
               "Na Kika (NSDI '06) §5.3 "
               "(paper: PHP 13.7s mean / 10.8 rps; Na Kika 4.3s / 34.3 rps)");

  print_row("Deployment", {"Mean resp (s)", "Requests/s"});
  print_row("----------", {"-------------", "----------"});

  const run_output php = run_php();
  print_row("PHP single server", {num(php.mean_response, 2), num(php.rps, 1)});
  const run_output nk = run_nakika();
  print_row("Na Kika (5 nodes)", {num(nk.mean_response, 2), num(nk.rps, 1)});

  json.add("php", "mean_response_seconds", php.mean_response);
  json.add("php", "requests_per_second", php.rps);
  json.add("nakika", "mean_response_seconds", nk.mean_response);
  json.add("nakika", "requests_per_second", nk.rps);
  std::printf("\nreplicated user registrations visible on every node: %zu\n",
              nk.replicated_registrations);
  std::printf(
      "shape checks: Na Kika improves both mean response time (paper 3.2x)\n"
      "and throughput (paper 3.2x) by moving dynamic-content generation to\n"
      "edge CPUs; measured speedup %.1fx response, %.1fx throughput.\n",
      nk.mean_response > 0 ? php.mean_response / nk.mean_response : 0.0,
      php.rps > 0 ? nk.rps / php.rps : 0.0);
  return 0;
}
