// Aggregate throughput of an N-node worker cluster cooperating through the
// thread-safe peer transport: 1/2/4 nodes x 1/4 workers over one hot URL set.
// Each node's request stream is phase-shifted, so a node's early misses are
// content other nodes already cached — the measure of interest is how much
// of the miss traffic the cluster serves from peer caches instead of the
// origin (peer-hit ratio) alongside aggregate req/s. Also reports
// single-flight coalescing and the accounted virtual network cost of the
// threaded transport's overlay walks. `--smoke` shrinks the run for CI and
// verifies every response byte.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "proxy/deployment.hpp"

namespace nakika {
namespace {

constexpr std::size_t k_hot_urls = 256;

struct cluster_env {
  sim::event_loop loop;
  std::unique_ptr<sim::network> net;
  std::unique_ptr<proxy::deployment> dep;
  proxy::origin_server* origin = nullptr;
  std::vector<proxy::nakika_node*> nodes;

  cluster_env(std::size_t n_nodes, std::size_t workers) {
    net = std::make_unique<sim::network>(loop);
    const sim::node_id origin_host = net->add_node("origin");
    std::vector<sim::node_id> hosts;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      hosts.push_back(net->add_node("p" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_nodes; ++i) {
      net->set_route(hosts[i], origin_host, 0.005);
      for (std::size_t j = i + 1; j < n_nodes; ++j) {
        net->set_route(hosts[i], hosts[j], 0.002);  // one tight Coral cluster
      }
    }
    dep = std::make_unique<proxy::deployment>(*net);
    origin = &dep->create_origin(origin_host);
    dep->map_host("hot.org", *origin);
    for (std::size_t i = 0; i < k_hot_urls; ++i) {
      origin->add_static_text("hot.org", "/obj/" + std::to_string(i), "text/plain",
                              std::string(1024, static_cast<char>('a' + i % 26)), 36000);
    }
    dep->enable_overlay();
    for (std::size_t i = 0; i < n_nodes; ++i) {
      proxy::node_config cfg;
      cfg.workers = workers;
      cfg.queue_capacity = 4096;
      cfg.resource_controls = false;
      nodes.push_back(&dep->create_node(hosts[i], std::move(cfg)));
    }
    loop.run();  // settle overlay joins before concurrent serving
  }
};

std::string url_for(std::size_t i) {
  return "http://hot.org/obj/" + std::to_string(i % k_hot_urls);
}

struct cluster_result {
  double requests_per_second = 0.0;
  double peer_hit_ratio = 0.0;  // of overlay-consulted misses
  std::size_t peer_hits = 0;
  std::size_t coalesced = 0;
  double peer_latency_seconds = 0.0;
  std::size_t bad = 0;  // responses that failed verification
};

// One producer thread per node with a bounded in-flight window; every node
// serves total/n_nodes requests, phase-shifted by node index.
cluster_result run_cluster(std::size_t n_nodes, std::size_t workers, std::size_t total) {
  cluster_env env(n_nodes, workers);
  const std::size_t per_node = total / n_nodes;
  std::atomic<std::size_t> bad{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    producers.emplace_back([&, n] {
      std::atomic<std::size_t> done{0};
      constexpr std::size_t k_in_flight = 128;
      for (std::size_t i = 0; i < per_node; ++i) {
        while (i - done.load(std::memory_order_acquire) >= k_in_flight) {
          std::this_thread::yield();
        }
        const std::size_t idx = i + n * (k_hot_urls / n_nodes);
        http::request r;
        r.url = http::url::parse(url_for(idx));
        r.client_ip = "10.0.0.1";
        const char expected = static_cast<char>('a' + idx % k_hot_urls % 26);
        env.nodes[n]->handle(r, [&, expected](http::response resp) {
          if (resp.status != 200 || !resp.body || resp.body->view()[0] != expected) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
          done.fetch_add(1, std::memory_order_release);
        });
      }
      env.nodes[n]->drain();
    });
  }
  for (auto& t : producers) t.join();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  cluster_result out;
  std::size_t misses = 0;
  for (auto* node : env.nodes) {
    const util::run_counters c = node->counters();
    out.peer_hits += c.peer_hits;
    misses += c.peer_hits + c.peer_misses;
    out.coalesced += c.coalesced;
    out.peer_latency_seconds += node->peer_latency_seconds();
  }
  out.requests_per_second = static_cast<double>(per_node * n_nodes) / elapsed.count();
  out.peer_hit_ratio =
      misses == 0 ? 0.0 : static_cast<double>(out.peer_hits) / static_cast<double>(misses);
  out.bad = bad.load();
  return out;
}

}  // namespace
}  // namespace nakika

int main(int argc, char** argv) {
  using namespace nakika;
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  bench::json_reporter json("bench_cluster", argc, argv);

  bench::print_header(
      "Worker cluster: cooperative caching over the threaded peer transport",
      "multi-node composition (paper SS2) on the ROADMAP scaling path");
  std::printf("%u hardware threads; aggregate req/s is only meaningful on "
              "multi-core runners\n\n",
              std::thread::hardware_concurrency());

  const std::size_t node_counts[] = {1, 2, 4};
  const std::size_t worker_counts[] = {1, 4};
  const std::size_t total = smoke ? 2'000 : 40'000;

  bool all_ok = true;
  bench::print_row("nodes x workers",
                   {"req/s", "peer-hit%", "coalesced", "net-lat(s)", "ok"});
  for (const std::size_t nodes : node_counts) {
    for (const std::size_t workers : worker_counts) {
      const cluster_result r = run_cluster(nodes, workers, total);
      if (r.bad != 0) all_ok = false;
      if (nodes > 1 && r.peer_hits == 0) all_ok = false;
      bench::print_row(std::to_string(nodes) + " x " + std::to_string(workers),
                       {bench::num(r.requests_per_second, 0), bench::pct(r.peer_hit_ratio),
                        std::to_string(r.coalesced), bench::num(r.peer_latency_seconds, 3),
                        r.bad == 0 ? "yes" : "NO"});
      const std::string config =
          "nodes=" + std::to_string(nodes) + "/workers=" + std::to_string(workers);
      json.add(config, "requests_per_second", r.requests_per_second);
      json.add(config, "peer_hit_ratio", r.peer_hit_ratio);
      json.add(config, "peer_hits", static_cast<double>(r.peer_hits));
      json.add(config, "coalesced_requests", static_cast<double>(r.coalesced));
      json.add(config, "accounted_network_latency_seconds", r.peer_latency_seconds);
    }
  }
  if (!all_ok) {
    std::printf("\nFAIL: bad responses or a multi-node run with zero peer hits\n");
    return 1;
  }
  std::printf("\nall responses verified; every multi-node run hit peer caches\n");
  return 0;
}
