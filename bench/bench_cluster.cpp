// Aggregate throughput of an N-node worker cluster cooperating through the
// thread-safe peer transport: 1/2/4 nodes x 1/4 workers over one hot URL set.
// Each node's request stream is phase-shifted, so a node's early misses are
// content other nodes already cached — the measure of interest is how much
// of the miss traffic the cluster serves from peer caches instead of the
// origin (peer-hit ratio) alongside aggregate req/s. Also reports
// single-flight coalescing and the accounted virtual network cost of the
// threaded transport's overlay walks. `--smoke` shrinks the run for CI and
// verifies every response byte.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "proxy/deployment.hpp"
#include "workload/scenario.hpp"

namespace nakika {
namespace {

constexpr std::size_t k_hot_urls = 256;

struct cluster_env {
  sim::event_loop loop;
  std::unique_ptr<sim::network> net;
  std::unique_ptr<proxy::deployment> dep;
  proxy::origin_server* origin = nullptr;
  std::vector<proxy::nakika_node*> nodes;

  cluster_env(std::size_t n_nodes, std::size_t workers) {
    net = std::make_unique<sim::network>(loop);
    const sim::node_id origin_host = net->add_node("origin");
    std::vector<sim::node_id> hosts;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      hosts.push_back(net->add_node("p" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_nodes; ++i) {
      net->set_route(hosts[i], origin_host, 0.005);
      for (std::size_t j = i + 1; j < n_nodes; ++j) {
        net->set_route(hosts[i], hosts[j], 0.002);  // one tight Coral cluster
      }
    }
    dep = std::make_unique<proxy::deployment>(*net);
    origin = &dep->create_origin(origin_host);
    dep->map_host("hot.org", *origin);
    for (std::size_t i = 0; i < k_hot_urls; ++i) {
      origin->add_static_text("hot.org", "/obj/" + std::to_string(i), "text/plain",
                              std::string(1024, static_cast<char>('a' + i % 26)), 36000);
    }
    dep->enable_overlay();
    for (std::size_t i = 0; i < n_nodes; ++i) {
      proxy::node_config cfg;
      cfg.workers = workers;
      cfg.queue_capacity = 4096;
      cfg.resource_controls = false;
      nodes.push_back(&dep->create_node(hosts[i], std::move(cfg)));
    }
    loop.run();  // settle overlay joins before concurrent serving
  }
};

std::string url_for(std::size_t i) {
  return "http://hot.org/obj/" + std::to_string(i % k_hot_urls);
}

struct cluster_result {
  double requests_per_second = 0.0;
  double peer_hit_ratio = 0.0;  // of overlay-consulted misses
  std::size_t peer_hits = 0;
  std::size_t coalesced = 0;
  double peer_latency_seconds = 0.0;
  std::size_t bad = 0;  // responses that failed verification
  // Wall-clock submit-to-completion latency across all nodes' requests.
  obs::histogram_summary latency;
};

// One producer thread per node with a bounded in-flight window; every node
// serves total/n_nodes requests, phase-shifted by node index.
cluster_result run_cluster(std::size_t n_nodes, std::size_t workers, std::size_t total) {
  cluster_env env(n_nodes, workers);
  const std::size_t per_node = total / n_nodes;
  std::atomic<std::size_t> bad{0};
  // Relaxed-atomic buckets: safe to share across every producer's completions.
  obs::latency_histogram latency;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    producers.emplace_back([&, n] {
      std::atomic<std::size_t> done{0};
      constexpr std::size_t k_in_flight = 128;
      for (std::size_t i = 0; i < per_node; ++i) {
        while (i - done.load(std::memory_order_acquire) >= k_in_flight) {
          std::this_thread::yield();
        }
        const std::size_t idx = i + n * (k_hot_urls / n_nodes);
        http::request r;
        r.url = http::url::parse(url_for(idx));
        r.client_ip = "10.0.0.1";
        const char expected = static_cast<char>('a' + idx % k_hot_urls % 26);
        const auto submitted = std::chrono::steady_clock::now();
        env.nodes[n]->handle(r, [&, expected, submitted](http::response resp) {
          latency.record_seconds(
              std::chrono::duration<double>(std::chrono::steady_clock::now() - submitted)
                  .count());
          if (resp.status != 200 || !resp.body || resp.body->view()[0] != expected) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
          done.fetch_add(1, std::memory_order_release);
        });
      }
      env.nodes[n]->drain();
    });
  }
  for (auto& t : producers) t.join();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  cluster_result out;
  std::size_t misses = 0;
  for (auto* node : env.nodes) {
    const util::run_counters c = node->counters();
    out.peer_hits += c.peer_hits;
    misses += c.peer_hits + c.peer_misses;
    out.coalesced += c.coalesced;
    out.peer_latency_seconds += node->peer_latency_seconds();
  }
  out.requests_per_second = static_cast<double>(per_node * n_nodes) / elapsed.count();
  out.peer_hit_ratio =
      misses == 0 ? 0.0 : static_cast<double>(out.peer_hits) / static_cast<double>(misses);
  out.bad = bad.load();
  out.latency = obs::summarize(latency);
  return out;
}

// Every config and scenario emits the same three latency percentiles, so the
// checked-in BENCH_cluster.json baseline tracks tail latency across PRs.
void add_latency_rows(bench::json_reporter& json, const std::string& config,
                      const obs::histogram_summary& l) {
  json.add(config, "latency_p50_ms", l.p50 * 1000.0);
  json.add(config, "latency_p99_ms", l.p99 * 1000.0);
  json.add(config, "latency_p999_ms", l.p999 * 1000.0);
}

// --- scenario tier: adversarial families over workload::cluster_scenario ---

struct timed_batch {
  workload::batch_metrics metrics;
  double seconds = 0.0;
};

timed_batch timed(workload::cluster_scenario& s, const std::vector<workload::request_ref>& reqs) {
  const auto start = std::chrono::steady_clock::now();
  timed_batch out;
  out.metrics = s.run_batch(reqs);
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

// Flash crowd: a Zipf burst against a cold 4-node cluster. Gate: lossless AND
// origin fetches <= distinct hot objects (the O(1) collapse invariant).
bool run_flash_crowd(bool smoke, bench::json_reporter& json) {
  workload::scenario_config cfg;
  cfg.nodes = 4;
  cfg.workers = 2;
  cfg.seed = 1097;
  workload::tenant_spec hot;
  hot.site = "flash.org";
  hot.objects = 32;
  hot.object_bytes = 1024;
  cfg.tenants.push_back(hot);
  workload::cluster_scenario s(cfg);
  s.warm_script_probes();

  const std::size_t burst_size = smoke ? 256 : 8192;
  const std::vector<workload::request_ref> burst = s.zipf_batch(0, burst_size);
  std::size_t distinct = 0;
  {
    std::vector<bool> seen(hot.objects, false);
    for (const workload::request_ref& ref : burst) {
      if (!seen[ref.object]) { seen[ref.object] = true; ++distinct; }
    }
  }
  const timed_batch t = timed(s, burst);
  const bool o1 = t.metrics.origin_fetches <= distinct;
  const bool ok = t.metrics.lossless() && o1;

  bench::print_row("flash-crowd " + std::to_string(burst_size) + " reqs",
                   {bench::num(static_cast<double>(burst_size) / t.seconds, 0),
                    bench::pct(t.metrics.peer_hit_ratio()),
                    std::to_string(t.metrics.coalesced),
                    std::to_string(t.metrics.origin_fetches) + "/" + std::to_string(distinct),
                    ok ? "yes" : "NO"});
  const std::string config = "flash_crowd/nodes=4/workers=2";
  json.add(config, "requests_per_second", static_cast<double>(burst_size) / t.seconds);
  json.add(config, "origin_fetches", static_cast<double>(t.metrics.origin_fetches));
  json.add(config, "distinct_objects", static_cast<double>(distinct));
  json.add(config, "coalesced_requests", static_cast<double>(t.metrics.coalesced));
  json.add(config, "peer_hit_ratio", t.metrics.peer_hit_ratio());
  add_latency_rows(json, config, t.metrics.latency);
  return ok;
}

// Churn: crash the warm node mid-workload, then recover it. Gates: every
// phase lossless with zero 503s, origin fallback bounded by the objects that
// died with the node, and the peer-hit ratio back at its pre-crash level.
bool run_churn(bool smoke, bench::json_reporter& json) {
  workload::scenario_config cfg;
  cfg.nodes = 4;
  cfg.workers = 2;
  cfg.seed = 2221;
  workload::tenant_spec warm;
  warm.site = "warm.org";
  warm.objects = smoke ? 32 : 128;
  cfg.tenants.push_back(warm);
  workload::tenant_spec solo;
  solo.site = "solo.org";
  solo.objects = smoke ? 16 : 64;
  cfg.tenants.push_back(solo);
  workload::cluster_scenario s(cfg);
  s.warm_script_probes();

  bool ok = s.run_batch(s.all_objects(0), 0).lossless();
  ok = ok && s.run_batch(s.all_objects(1), 0).lossless();

  std::size_t pre_hits = 0;
  std::size_t pre_misses = 0;
  for (std::size_t n = 1; n < s.node_count(); ++n) {
    const workload::batch_metrics m = s.run_batch(s.all_objects(0), n);
    ok = ok && m.lossless();
    pre_hits += m.peer_hits;
    pre_misses += m.peer_misses;
  }
  const double ratio_pre = pre_hits + pre_misses == 0
                               ? 0.0
                               : static_cast<double>(pre_hits) /
                                     static_cast<double>(pre_hits + pre_misses);

  s.crash_node(0);
  std::vector<workload::request_ref> during = s.all_objects(0);
  const std::vector<workload::request_ref> lost = s.all_objects(1);
  during.insert(during.end(), lost.begin(), lost.end());
  const timed_batch t = timed(s, during);
  ok = ok && t.metrics.lossless() && t.metrics.busy == 0 &&
       t.metrics.origin_fetches <= lost.size();

  s.recover_node(0);
  std::vector<workload::request_ref> rewarm = s.all_objects(0);
  rewarm.insert(rewarm.end(), lost.begin(), lost.end());
  ok = ok && s.run_batch(rewarm, 0).lossless();

  std::size_t post_hits = 0;
  std::size_t post_misses = 0;
  for (std::size_t n = 1; n < s.node_count(); ++n) {
    const workload::batch_metrics m = s.run_batch(s.all_objects(1), n);
    ok = ok && m.lossless();
    post_hits += m.peer_hits;
    post_misses += m.peer_misses;
  }
  const double ratio_post = post_hits + post_misses == 0
                                ? 0.0
                                : static_cast<double>(post_hits) /
                                      static_cast<double>(post_hits + post_misses);
  ok = ok && ratio_post >= ratio_pre;

  bench::print_row("churn crash+recover",
                   {bench::num(static_cast<double>(during.size()) / t.seconds, 0),
                    bench::pct(ratio_post), std::to_string(t.metrics.coalesced),
                    std::to_string(t.metrics.origin_fetches) + "/" +
                        std::to_string(lost.size()),
                    ok ? "yes" : "NO"});
  const std::string config = "churn/nodes=4/workers=2";
  json.add(config, "peer_hit_ratio_pre_crash", ratio_pre);
  json.add(config, "peer_hit_ratio_post_recovery", ratio_post);
  json.add(config, "outage_origin_fetches", static_cast<double>(t.metrics.origin_fetches));
  json.add(config, "outage_requests_per_second",
           static_cast<double>(during.size()) / t.seconds);
  add_latency_rows(json, config, t.metrics.latency);
  return ok;
}

// Multi-tenant: an adversarial storm sweeps a small cache while a polite
// quota-protected tenant holds its working set. Gate: the polite tenant's
// re-read never touches origin (no starvation) and the storm stays inside
// its own quota.
bool run_multi_tenant(bool smoke, bench::json_reporter& json) {
  workload::scenario_config cfg;
  cfg.nodes = 1;
  cfg.workers = 2;
  cfg.seed = 3331;
  cfg.cache_bytes = 64 * 1024;
  workload::tenant_spec polite;
  polite.site = "polite.org";
  polite.objects = 16;
  polite.object_bytes = 512;
  polite.cache_quota_bytes = 16 * 1024;
  cfg.tenants.push_back(polite);
  workload::tenant_spec storm;
  storm.site = "storm.org";
  storm.objects = smoke ? 400 : 4000;
  storm.object_bytes = 512;
  storm.cache_quota_bytes = 32 * 1024;
  cfg.tenants.push_back(storm);
  workload::cluster_scenario s(cfg);
  s.warm_script_probes();

  bool ok = s.run_batch(s.all_objects(0), 0).lossless();
  const timed_batch t = timed(s, s.all_objects(1));
  ok = ok && t.metrics.lossless();
  const std::size_t storm_bytes = s.node(0).content_cache().tenant_bytes("storm.org");
  ok = ok && storm_bytes <= storm.cache_quota_bytes;

  const workload::batch_metrics reread = s.run_batch(s.all_objects(0), 0);
  ok = ok && reread.lossless() && reread.origin_fetches == 0;

  bench::print_row("multi-tenant storm",
                   {bench::num(static_cast<double>(storm.objects) / t.seconds, 0),
                    bench::pct(reread.peer_hit_ratio()), std::to_string(t.metrics.coalesced),
                    std::to_string(reread.origin_fetches) + "/0", ok ? "yes" : "NO"});
  const std::string config = "multi_tenant/nodes=1/workers=2";
  json.add(config, "storm_requests_per_second",
           static_cast<double>(storm.objects) / t.seconds);
  json.add(config, "storm_tenant_bytes", static_cast<double>(storm_bytes));
  json.add(config, "polite_reread_origin_fetches",
           static_cast<double>(reread.origin_fetches));
  add_latency_rows(json, config, t.metrics.latency);
  return ok;
}

// --- cache admission A/B: scan resistance of the probation FIFO ---------------

// A one-touch scan floods a small single-node cache while a promoted hot set
// sits in main. Reports the overall cache hit ratio and the hot set's
// post-scan survival (re-reads served from cache) with admission on vs off —
// the delta is the policy's payoff, and the gate is that admission never
// does worse than plain LRU on this workload.
struct admission_result {
  double overall_hit_ratio = 0.0;
  double hot_survival = 0.0;
  std::uint64_t admission_rejected = 0;
};

admission_result run_admission(bool admission, bool smoke) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id origin_host = net.add_node("origin");
  const sim::node_id proxy_host = net.add_node("proxy");
  net.set_route(origin_host, proxy_host, 0.0005);
  proxy::origin_server origin(net, origin_host);

  constexpr std::size_t k_hot = 32;
  const std::size_t scan_objects = smoke ? 400 : 4000;
  for (std::size_t i = 0; i < k_hot; ++i) {
    origin.add_static_text("hot.org", "/h/" + std::to_string(i), "text/plain",
                           std::string(1024, 'h'), 36000);
  }
  for (std::size_t i = 0; i < scan_objects; ++i) {
    origin.add_static_text("scan.org", "/s/" + std::to_string(i), "text/plain",
                           std::string(1024, 's'), 36000);
  }

  proxy::node_config cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1024;
  cfg.resource_controls = false;
  cfg.content_cache_bytes = 64 * 1024;  // hot set fits, hot + scan does not
  cfg.content_cache_shards = 1;
  cfg.cache_admission = admission;
  proxy::origin_server* raw = &origin;
  proxy::nakika_node node(
      net, proxy_host, [raw](const std::string&) -> proxy::http_endpoint* { return raw; },
      std::move(cfg));

  const auto get_all = [&](const std::string& host, std::size_t count, const char* path) {
    for (std::size_t i = 0; i < count; ++i) {
      http::request r;
      r.url = http::url::parse("http://" + host + path + std::to_string(i));
      r.client_ip = "10.0.0.1";
      node.handle(r, [](http::response) {});
    }
    node.drain();
  };

  get_all("hot.org", k_hot, "/h/");  // insert (probation under admission)
  get_all("hot.org", k_hot, "/h/");  // promote to main
  get_all("scan.org", scan_objects, "/s/");  // one-touch flood

  const cache::cache_stats before = node.content_cache().stats();
  get_all("hot.org", k_hot, "/h/");  // post-scan re-read
  const cache::cache_stats after = node.content_cache().stats();

  admission_result out;
  out.hot_survival = static_cast<double>(after.hits - before.hits) / k_hot;
  const std::uint64_t lookups = after.hits + after.misses;
  out.overall_hit_ratio =
      lookups == 0 ? 0.0 : static_cast<double>(after.hits) / static_cast<double>(lookups);
  out.admission_rejected = after.admission_rejected;
  return out;
}

bool run_admission_ab(bool smoke, bench::json_reporter& json) {
  std::printf("\ncache admission A/B (scan vs promoted hot set, 64 KiB cache):\n");
  bench::print_row("admission", {"cache-hit%", "hot-survival%", "rejected"});
  admission_result r[2];
  for (const bool on : {true, false}) {
    r[on ? 0 : 1] = run_admission(on, smoke);
    const admission_result& a = r[on ? 0 : 1];
    bench::print_row(on ? "on (probation+ghost)" : "off (plain LRU)",
                     {bench::pct(a.overall_hit_ratio), bench::pct(a.hot_survival),
                      std::to_string(a.admission_rejected)});
    const std::string config = std::string("admission=") + (on ? "on" : "off") +
                               "/nodes=1/workers=2";
    json.add(config, "cache_hit_ratio", a.overall_hit_ratio);
    json.add(config, "hot_set_survival", a.hot_survival);
    json.add(config, "admission_rejected", static_cast<double>(a.admission_rejected));
  }
  std::printf("hot-set survival delta: %+.1f points\n",
              (r[0].hot_survival - r[1].hot_survival) * 100.0);
  return r[0].hot_survival >= r[1].hot_survival;
}

}  // namespace
}  // namespace nakika

int main(int argc, char** argv) {
  using namespace nakika;
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  bench::json_reporter json("bench_cluster", argc, argv);

  bench::print_header(
      "Worker cluster: cooperative caching over the threaded peer transport",
      "multi-node composition (paper SS2) on the ROADMAP scaling path");
  std::printf("%u hardware threads; aggregate req/s is only meaningful on "
              "multi-core runners\n\n",
              std::thread::hardware_concurrency());

  const std::size_t node_counts[] = {1, 2, 4};
  const std::size_t worker_counts[] = {1, 4};
  const std::size_t total = smoke ? 2'000 : 40'000;

  bool all_ok = true;
  bench::print_row("nodes x workers",
                   {"req/s", "peer-hit%", "p50 ms", "p99 ms", "p999 ms", "ok"});
  for (const std::size_t nodes : node_counts) {
    for (const std::size_t workers : worker_counts) {
      const cluster_result r = run_cluster(nodes, workers, total);
      if (r.bad != 0) all_ok = false;
      if (nodes > 1 && r.peer_hits == 0) all_ok = false;
      bench::print_row(std::to_string(nodes) + " x " + std::to_string(workers),
                       {bench::num(r.requests_per_second, 0), bench::pct(r.peer_hit_ratio),
                        bench::ms(r.latency.p50, 3), bench::ms(r.latency.p99, 3),
                        bench::ms(r.latency.p999, 3), r.bad == 0 ? "yes" : "NO"});
      const std::string config =
          "nodes=" + std::to_string(nodes) + "/workers=" + std::to_string(workers);
      json.add(config, "requests_per_second", r.requests_per_second);
      json.add(config, "peer_hit_ratio", r.peer_hit_ratio);
      json.add(config, "peer_hits", static_cast<double>(r.peer_hits));
      json.add(config, "coalesced_requests", static_cast<double>(r.coalesced));
      json.add(config, "accounted_network_latency_seconds", r.peer_latency_seconds);
      add_latency_rows(json, config, r.latency);
    }
  }
  // Scenario tier: the three adversarial families, each with a hard
  // invariant gate folded into the exit code (CI runs --smoke).
  std::printf("\nscenario tier (last column gates the exit code):\n");
  bench::print_row("scenario", {"req/s", "peer-hit%", "coalesced", "origin/bound", "ok"});
  const bool flash_ok = run_flash_crowd(smoke, json);
  const bool churn_ok = run_churn(smoke, json);
  const bool tenant_ok = run_multi_tenant(smoke, json);
  const bool admission_ok = run_admission_ab(smoke, json);
  all_ok = all_ok && flash_ok && churn_ok && tenant_ok && admission_ok;

  if (!all_ok) {
    std::printf("\nFAIL: bad responses, a multi-node run with zero peer hits, "
                "or a violated scenario invariant (flash=%s churn=%s tenant=%s "
                "admission=%s)\n",
                flash_ok ? "ok" : "FAIL", churn_ok ? "ok" : "FAIL",
                tenant_ok ? "ok" : "FAIL", admission_ok ? "ok" : "FAIL");
    return 1;
  }
  std::printf("\nall responses verified; every multi-node run hit peer caches; "
              "scenario invariants held (O(1) origin, lossless churn, tenant "
              "isolation, admission beats LRU under scans)\n");
  return 0;
}
