// google-benchmark bridge for the shared `--json <path>` output mode
// (bench_common.hpp): a drop-in main body that strips --json from the
// command line (google-benchmark rejects unknown flags), runs the registered
// benchmarks with a console reporter, and mirrors every run into
// {bench, config, metric, value} records.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace nakika::bench {

namespace detail {

class json_bridge_reporter : public benchmark::ConsoleReporter {
 public:
  explicit json_bridge_reporter(json_reporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      out_.add(r.benchmark_name(), "real_time_" + unit_suffix(r.time_unit),
               r.GetAdjustedRealTime());
      out_.add(r.benchmark_name(), "iterations", static_cast<double>(r.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  static std::string unit_suffix(benchmark::TimeUnit u) {
    switch (u) {
      case benchmark::kNanosecond: return "ns";
      case benchmark::kMicrosecond: return "us";
      case benchmark::kMillisecond: return "ms";
      case benchmark::kSecond: return "s";
    }
    return "ns";
  }

  json_reporter& out_;
};

}  // namespace detail

inline int run_gbench_with_json(const char* bench_name, int argc, char** argv) {
  json_reporter json(bench_name, argc, argv);
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;  // skip the path operand too
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, filtered.data())) return 1;
  detail::json_bridge_reporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace nakika::bench
