// Shared helpers for the evaluation harness: table printing and the
// paper-vs-measured framing every bench reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nakika::bench {

inline void print_header(const char* experiment, const char* paper_reference) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_reference);
  std::printf("============================================================\n");
}

inline void print_row(const std::string& label, const std::vector<std::string>& cells,
                      int label_width = 28, int cell_width = 14) {
  std::printf("%-*s", label_width, label.c_str());
  for (const auto& cell : cells) {
    std::printf("%*s", cell_width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string ms(double seconds, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1000.0);
  return buf;
}

inline std::string num(double v, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string pct(double fraction, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace nakika::bench
