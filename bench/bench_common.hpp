// Shared helpers for the evaluation harness: table printing, the
// paper-vs-measured framing every bench reports, and the machine-readable
// `--json <path>` output that feeds the checked-in perf baselines
// (BENCH_vm.json) so the perf trajectory is tracked across PRs.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace nakika::bench {

// True when `flag` appears anywhere on the command line.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value following `flag` on the command line, or nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

// Accumulates {bench, config, metric, value} records and, when the bench was
// invoked with `--json <path>`, writes them as a JSON array on destruction.
// With no --json flag it is a no-op, so benches call add() unconditionally.
class json_reporter {
 public:
  json_reporter(std::string bench, int argc, char** argv) : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }
  json_reporter(const json_reporter&) = delete;
  json_reporter& operator=(const json_reporter&) = delete;
  ~json_reporter() { flush(); }

  void add(const std::string& config, const std::string& metric, double value) {
    if (path_.empty()) return;
    records_.push_back(record{config, metric, value});
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void flush() {
    if (path_.empty() || flushed_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_reporter: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const record& r = records_[i];
      std::fprintf(f, "  {\"bench\": \"%s\", \"config\": \"%s\", \"metric\": \"%s\", "
                      "\"value\": %.9g}%s\n",
                   bench_.c_str(), escape(r.config).c_str(), escape(r.metric).c_str(),
                   r.value, i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    flushed_ = true;
  }

 private:
  struct record {
    std::string config;
    std::string metric;
    double value;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<record> records_;
  bool flushed_ = false;
};

inline void print_header(const char* experiment, const char* paper_reference) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_reference);
  std::printf("============================================================\n");
}

inline void print_row(const std::string& label, const std::vector<std::string>& cells,
                      int label_width = 28, int cell_width = 14) {
  std::printf("%-*s", label_width, label.c_str());
  for (const auto& cell : cells) {
    std::printf("%*s", cell_width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string ms(double seconds, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1000.0);
  return buf;
}

inline std::string num(double v, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string pct(double fraction, int decimals = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace nakika::bench
