// Reproduces the local SIMM experiments of §5.2: 160 clients replaying
// accelerated access logs against (a) the single server and (b) a single Na
// Kika proxy, first on a plain switched LAN and then with the paper's
// artificial 80 ms delay / 8 Mbps cap in front of the origin.
//
// Paper anchors: on the LAN the single proxy trails the single server
// (p90 HTML 904 ms vs 964 ms, both serve all video at the 140 kbps bitrate);
// behind the constrained WAN the proxy wins decisively (8.88 s vs 1.21 s,
// video fraction 26.2% vs 99.9%).
#include <memory>

#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/simm.hpp"

namespace {

using namespace nakika;

workload::simm_config scaled_config() {
  workload::simm_config cfg;
  cfg.modules = 3;
  cfg.pages_per_module = 10;
  cfg.videos_per_module = 4;
  cfg.video_bytes = 1024 * 1024;
  cfg.images_per_page = 1;
  cfg.video_probability = 0.5;
  return cfg;
}

struct run_output {
  double html_p90 = 0;
  double video_ok = 0;
};

constexpr double video_bitrate_bps = 140000.0;

run_output run(bool constrained, bool nakika, int clients) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo =
      constrained ? sim::build_constrained_wan(net) : sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host(workload::simm_site::host_name, origin);
  workload::simm_site site(scaled_config());

  proxy::http_endpoint* endpoint = nullptr;
  proxy::nakika_node* node = nullptr;
  if (nakika) {
    site.install_edge(origin);
    proxy::node_config cfg;
    cfg.resource_controls = false;
    node = &dep.create_node(topo.proxy, std::move(cfg));
    endpoint = node;
  } else {
    site.install_single_server(origin);
    endpoint = &origin;
  }

  if (nakika && constrained) {
    // The WAN comparison runs warm (repeated log replay); the LAN one is the
    // paper's cold-cache, heavy-load case where the proxy trails the server.
    auto prime = std::make_unique<workload::measurement>();
    workload::load_driver warm(net, topo.client, [&](std::size_t) { return endpoint; },
                               site.make_generator(true, 77));
    workload::driver_options opts;
    opts.clients = 8;
    opts.requests_per_client = 30;
    warm.start(opts, *prime);
    loop.run();
  }

  auto m = std::make_unique<workload::measurement>();
  workload::load_driver driver(net, topo.client, [&](std::size_t) { return endpoint; },
                               site.make_generator(nakika, 7));
  workload::driver_options opts;
  opts.clients = static_cast<std::size_t>(clients);
  opts.requests_per_client = 8;
  opts.ramp_seconds = 1.0;
  driver.start(opts, *m);
  loop.run();

  run_output out;
  out.html_p90 = m->latency_of(workload::content_class::html).percentile(90);
  const auto& video = m->bandwidth_of(workload::content_class::video);
  out.video_ok = video.count() > 0 ? video.fraction_at_least(video_bitrate_bps) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_simm_local", argc, argv);
  print_header("SIMM local experiments — single server vs one Na Kika proxy",
               "Na Kika (NSDI '06) §5.2 local "
               "(paper LAN: 904ms vs 964ms p90; constrained WAN: 8.88s vs "
               "1.21s, video 26.2% vs 99.9%)");

  const int clients = 160;
  print_row("Network", {"Server", "p90 HTML (s)", "video>=140k"});
  print_row("-------", {"------", "------------", "-----------"});

  const run_output lan_single = run(false, false, clients);
  print_row("switched LAN", {"single", num(lan_single.html_p90, 3), pct(lan_single.video_ok)});
  const run_output lan_nakika = run(false, true, clients);
  print_row("switched LAN", {"nakika", num(lan_nakika.html_p90, 3), pct(lan_nakika.video_ok)});

  const run_output wan_single = run(true, false, clients);
  print_row("80ms/8Mbps WAN",
            {"single", num(wan_single.html_p90, 3), pct(wan_single.video_ok)});
  const run_output wan_nakika = run(true, true, clients);
  print_row("80ms/8Mbps WAN",
            {"nakika", num(wan_nakika.html_p90, 3), pct(wan_nakika.video_ok)});

  json.add("lan/single", "p90_html_seconds", lan_single.html_p90);
  json.add("lan/nakika", "p90_html_seconds", lan_nakika.html_p90);
  json.add("wan/single", "p90_html_seconds", wan_single.html_p90);
  json.add("wan/nakika", "p90_html_seconds", wan_nakika.html_p90);
  json.add("wan/nakika", "video_ok_fraction", wan_nakika.video_ok);
  std::printf(
      "\nshape checks: on the LAN the two are comparable (the proxy may trail\n"
      "slightly, as in the paper); behind the bandwidth cap the Na Kika proxy\n"
      "wins on HTML latency (measured %.2fs vs %.2fs) and delivers the video\n"
      "bitrate to far more clients (%.1f%% vs %.1f%%).\n",
      wan_nakika.html_p90, wan_single.html_p90, wan_nakika.video_ok * 100,
      wan_single.video_ok * 100);
  return 0;
}
