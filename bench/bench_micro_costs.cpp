// Reproduces the cost breakdown of §5.1's prose with google-benchmark: real
// measurements of this reproduction's engine for every constant the paper
// reports — context creation vs reuse, script parse+execute by size,
// decision-tree cache retrieval, and predicate evaluation for Pred-n.
//
// Paper values (2.8 GHz Pentium 4): context creation 1.5 ms, context reuse
// 3 us, parse+execute 0.08–17.8 ms by size, decision tree from cache 4 us,
// predicate evaluation < 38 us for up to 100 policies.
#include <benchmark/benchmark.h>

#include "bench_gbench_json.hpp"

#include "cache/script_cache.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace nakika;

std::string policy_script(int policies) {
  std::string src;
  for (int i = 0; i < policies; ++i) {
    src += "var p" + std::to_string(i) + " = new Policy();\n";
    src += "p" + std::to_string(i) + ".url = [ \"host" + std::to_string(i) +
           ".example.org/some/path\" ];\n";
    src += "p" + std::to_string(i) + ".onRequest = function() {};\n";
    src += "p" + std::to_string(i) + ".register();\n";
  }
  return src;
}

void context_creation(benchmark::State& state) {
  for (auto _ : state) {
    core::sandbox sb;
    benchmark::DoNotOptimize(sb.ctx().global());
  }
}
BENCHMARK(context_creation)->Unit(benchmark::kMicrosecond);

void context_reuse(benchmark::State& state) {
  core::sandbox sb;
  for (auto _ : state) {
    sb.begin_run();
    benchmark::DoNotOptimize(sb.ops_used());
  }
}
BENCHMARK(context_reuse)->Unit(benchmark::kMicrosecond);

void parse_and_execute(benchmark::State& state) {
  const std::string src = policy_script(static_cast<int>(state.range(0)));
  core::sandbox sb;
  std::uint64_t version = 1;
  for (auto _ : state) {
    sb.load_stage("http://bench/stage.js", src, version++);
  }
  state.SetLabel(std::to_string(src.size()) + " bytes");
}
BENCHMARK(parse_and_execute)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

void decision_tree_cache_hit(benchmark::State& state) {
  core::sandbox sb;
  sb.load_stage("http://bench/stage.js", policy_script(10), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sb.find_stage("http://bench/stage.js", 1));
  }
}
BENCHMARK(decision_tree_cache_hit)->Unit(benchmark::kMicrosecond);

void script_source_cache_hit(benchmark::State& state) {
  cache::ttl_cache<std::string> sources;
  sources.put("http://bench/stage.js", policy_script(10), 1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sources.get("http://bench/stage.js", 0));
  }
}
BENCHMARK(script_source_cache_hit)->Unit(benchmark::kMicrosecond);

void predicate_evaluation(benchmark::State& state) {
  core::sandbox sb;
  const auto& stage =
      sb.load_stage("http://bench/stage.js", policy_script(static_cast<int>(state.range(0))), 1);
  http::request r;
  r.url = http::url::parse("http://unmatched.example.net/a/b/c");
  r.client_ip = "10.0.0.1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage.tree->match(r));
  }
  state.SetLabel(std::to_string(stage.policy_count) + " policies, no match");
}
BENCHMARK(predicate_evaluation)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

void empty_handler_invocation(benchmark::State& state) {
  core::sandbox sb;
  const auto& stage = sb.load_stage("http://bench/stage.js",
                                    "var m = new Policy();\n"
                                    "m.onRequest = function() {};\n"
                                    "m.register();\n",
                                    1);
  http::request r;
  r.url = http::url::parse("http://any.example/");
  const auto match = stage.tree->match(r);
  core::exec_state exec;
  exec.request = &r;
  js::interpreter in(sb.ctx());
  for (auto _ : state) {
    sb.binding()->current = &exec;
    in.call(match.matched->on_request, js::value::undefined(), {});
    sb.binding()->current = nullptr;
  }
}
BENCHMARK(empty_handler_invocation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return nakika::bench::run_gbench_with_json("bench_micro_costs", argc, argv);
}
