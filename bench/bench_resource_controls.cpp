// Reproduces §5.1 "Resource Controls": throughput of a Na Kika node under
// flash-crowd load with and without congestion-based resource management,
// and with a misbehaving script that consumes all available memory by
// repeatedly doubling a string.
//
// Paper: 30 generators: 294 rps without vs 396 rps with controls; 90
// generators: 229 vs 356; with the misbehaving script at 30 generators the
// throughput collapses to 47 rps without controls but holds at 382 with.
// Runs with controls reject < 0.55% by throttling and < 0.08% by
// termination.
#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/clients.hpp"

namespace {

using namespace nakika;

constexpr const char* page_host = "www.google.example";
constexpr const char* hog_host = "hog.example";

const char* match1_script = R"JS(
var m = new Policy();
m.url = [ "www.google.example" ];
m.onRequest = function() {};
m.onResponse = function() {};
m.register();
)JS";

// The misbehaving script. Without per-context limits or the monitor, each
// request performs a large amount of real allocation and CPU work.
const char* hog_script = R"JS(
var hog = new Policy();
hog.url = [ "hog.example" ];
hog.onResponse = function() {
  var s = "xxxxxxxxxxxxxxxx";
  for (var i = 0; i < 20; i++) { s = s + s; }
  Response.setHeader("X-Hog", s.length);
};
hog.register();
)JS";

const char* admin_wall2 = R"JS(
var wall = new Policy();
wall.onRequest = function() {};
wall.onResponse = function() {};
wall.register();
)JS";

struct run_result {
  double rps = 0;
  double throttled_fraction = 0;
  double terminated_fraction = 0;
};

run_result run(bool controls, bool with_hog, std::size_t clients, double duration_s) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  const sim::node_id hog_client = net.add_node("hog-client");
  net.set_route(hog_client, topo.proxy, 0.0002);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host(page_host, origin);
  dep.map_host(hog_host, origin);
  origin.add_static_text(page_host, "/", "text/html", std::string(2096, 'g'), 36000);
  origin.add_static_text(page_host, "/nakika.js", "application/javascript", match1_script,
                         36000);
  origin.add_static_text(hog_host, "/nakika.js", "application/javascript", hog_script, 36000);
  origin.add_static_text(hog_host, "/item", "text/plain", "x", 0);  // uncacheable

  proxy::node_config cfg;
  cfg.resource_controls = controls;
  cfg.control_interval = 0.25;
  cfg.control_timeout = 0.25;
  cfg.clientwall_source = admin_wall2;
  cfg.serverwall_source = admin_wall2;
  // Congestion thresholds for one node's worth of capacity.
  cfg.capacities.cpu_seconds_per_second = 1.0;
  cfg.capacities.memory_bytes_per_second = 24e6;
  if (!controls) {
    // "Without resource controls": no sandbox limits either.
    cfg.script_limits.heap_bytes = 0;
    cfg.script_limits.ops = 0;
  } else {
    // The sandbox bounds any single pipeline's memory, standing in for the
    // paper's per-pipeline OS processes that the monitor can kill.
    cfg.script_limits.heap_bytes = 2 * 1024 * 1024;
  }
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));
  if (controls) node.start_monitor();

  workload::measurement m;
  workload::load_driver driver(
      net, topo.client, [&](std::size_t) { return &node; },
      [&](std::size_t, std::size_t) -> std::optional<http::request> {
        http::request r;
        r.url = http::url::parse(std::string("http://") + page_host + "/");
        r.client_ip = "10.0.0.1";
        return r;
      });
  workload::driver_options opts;
  opts.clients = clients;
  opts.deadline_seconds = duration_s;
  opts.ramp_seconds = 0.2;
  driver.start(opts, m);

  workload::measurement hog_m;
  workload::load_driver hog_driver(
      net, hog_client, [&](std::size_t) { return &node; },
      [&](std::size_t, std::size_t seq) -> std::optional<http::request> {
        http::request r;
        r.url = http::url::parse(std::string("http://") + hog_host +
                                 "/item?" + std::to_string(seq));
        r.client_ip = "10.0.0.2";
        return r;
      });
  if (with_hog) {
    workload::driver_options hog_opts;
    hog_opts.clients = 1;  // "one instance of a misbehaving script"
    hog_opts.deadline_seconds = duration_s;
    hog_opts.think_time_seconds = 0.05;  // the attacker retries, not spins
    hog_driver.start(hog_opts, hog_m);
  }

  loop.run_until(duration_s);
  m.set_window(0.0, duration_s);

  run_result out;
  out.rps = m.requests_per_second();
  const auto& counters = node.counters();
  out.throttled_fraction = counters.throttled_fraction();
  out.terminated_fraction = counters.terminated_fraction();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_resource_controls", argc, argv);
  print_header("Resource controls — throughput under load and under attack",
               "Na Kika (NSDI '06) §5.1 Resource Controls "
               "(paper: 30 gen 294→396 rps, 90 gen 229→356 rps, "
               "+misbehaving script 47 vs 382 rps)");

  const double duration = 10.0;
  print_row("Scenario", {"Controls", "Requests/s", "Throttled", "Terminated"});
  print_row("--------", {"--------", "----------", "---------", "----------"});

  double collapse_rps = 0;
  double protected_rps = 0;
  for (const std::size_t clients : {30u, 90u}) {
    for (const bool controls : {false, true}) {
      const run_result r = run(controls, /*with_hog=*/false, clients, duration);
      print_row(std::to_string(clients) + " generators",
                {controls ? "on" : "off", num(r.rps, 0), pct(r.throttled_fraction, 2),
                 pct(r.terminated_fraction, 3)});
      json.add(std::to_string(clients) + "gen/controls=" + (controls ? "on" : "off"),
               "requests_per_second", r.rps);
    }
  }
  for (const bool controls : {false, true}) {
    const run_result r = run(controls, /*with_hog=*/true, 30, duration);
    if (!controls) collapse_rps = r.rps;
    if (controls) protected_rps = r.rps;
    print_row("30 gen + misbehaving",
              {controls ? "on" : "off", num(r.rps, 0), pct(r.throttled_fraction, 2),
               pct(r.terminated_fraction, 3)});
    json.add(std::string("30gen+hog/controls=") + (controls ? "on" : "off"),
             "requests_per_second", r.rps);
  }

  std::printf(
      "\nshape checks: without controls the misbehaving script collapses\n"
      "throughput (paper 294 -> 47 rps); with controls throughput holds\n"
      "(measured %.0f vs %.0f rps) while rejecting only a small fraction of\n"
      "requests (paper: <0.55%% throttled, <0.08%% terminated).\n",
      collapse_rps, protected_rps);
  return 0;
}
