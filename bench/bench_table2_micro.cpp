// Reproduces paper Table 1 (configuration legend) and Table 2: latency for a
// client fetching a static 2,096-byte page (Google's home page without
// inline images) through nine proxy configurations, under cold and warm
// caches, on a switched 100 Mbit LAN.
//
// Absolute values differ from the paper (our engine and cost model, not
// Apache/SpiderMonkey on a 2.8 GHz Pentium 4); the orderings to check are
// Proxy < DHT < Admin < Pred-0 <= Pred-1 <= Match-1 <= Pred-10 < Pred-50 <
// Pred-100 under a cold cache, and everything collapsing to a small constant
// under a warm cache.
#include <functional>
#include <optional>

#include "bench_common.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace {

using namespace nakika;

constexpr const char* page_host = "www.google.example";
const std::string page_body(2096, 'g');

std::string pred_site_script(int policies, bool include_match) {
  // `policies` non-matching policy objects (distinct URL predicates), plus
  // optionally one matching policy with empty event handlers.
  std::string src;
  for (int i = 0; i < policies; ++i) {
    src += "var p" + std::to_string(i) + " = new Policy();\n";
    src += "p" + std::to_string(i) + ".url = [ \"other" + std::to_string(i) +
           ".example.org\" ];\n";
    src += "p" + std::to_string(i) + ".onRequest = function() {};\n";
    src += "p" + std::to_string(i) + ".register();\n";
  }
  if (include_match) {
    src += "var m = new Policy();\n";
    src += "m.url = [ \"" + std::string(page_host) + "\" ];\n";
    src += "m.onRequest = function() {};\n";
    src += "m.onResponse = function() {};\n";
    src += "m.register();\n";
  }
  return src;
}

const char* admin_wall = R"JS(
var wall = new Policy();
wall.onRequest = function() {};
wall.onResponse = function() {};
wall.register();
)JS";

struct config_run {
  double cold_ms = 0;
  double warm_ms = 0;
};

// Builds a fresh LAN deployment per configuration and measures the first
// (cold) and second (warm) request.
config_run run_config(const std::string& name, bool use_dht, bool admin_stages,
                      std::optional<std::string> site_script) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host(page_host, origin);
  origin.add_static_text(page_host, "/", "text/html", page_body, 3600);
  if (site_script) {
    origin.add_static_text(page_host, "/nakika.js", "application/javascript", *site_script,
                           3600);
  }

  proxy::http_endpoint* endpoint = nullptr;
  if (name == "Proxy") {
    endpoint = &dep.create_plain_proxy(topo.proxy);
  } else {
    proxy::node_config cfg;
    cfg.resource_controls = false;  // "resource control is disabled" (§5.1)
    cfg.scripting = !use_dht || admin_stages;  // DHT config: proxy + DHT only
    if (admin_stages) {
      cfg.clientwall_source = admin_wall;
      cfg.serverwall_source = admin_wall;
    }
    proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));
    if (use_dht) {
      // Peers so the DHT has a ring to consult (the paper integrates Coral).
      const sim::node_id peer1 = net.add_node("peer1");
      const sim::node_id peer2 = net.add_node("peer2");
      net.set_route(topo.proxy, peer1, 0.0002);
      net.set_route(topo.proxy, peer2, 0.0002);
      net.set_route(peer1, peer2, 0.0002);
      net.set_route(topo.client, peer1, 0.0002);
      net.set_route(topo.client, peer2, 0.0002);
      net.set_route(topo.origin, peer1, 0.0002);
      net.set_route(topo.origin, peer2, 0.0002);
      dep.enable_overlay();
      dep.create_node(peer1, [] {
        proxy::node_config c;
        c.resource_controls = false;
        return c;
      }());
      dep.create_node(peer2, [] {
        proxy::node_config c;
        c.resource_controls = false;
        return c;
      }());
      loop.run();  // settle joins
    }
    endpoint = &node;
  }

  auto fetch_once = [&]() {
    http::request r;
    r.url = http::url::parse(std::string("http://") + page_host + "/");
    r.client_ip = "10.0.0.1";
    const double start = loop.now();
    double finished = start;
    proxy::forward_request(net, topo.client, *endpoint, r,
                           [&](http::response resp) {
                             finished = loop.now();
                             if (resp.status != 200) {
                               std::fprintf(stderr, "unexpected status %d in %s\n",
                                            resp.status, name.c_str());
                             }
                           });
    loop.run();
    return finished - start;
  };

  config_run out;
  out.cold_ms = fetch_once() * 1000.0;
  out.warm_ms = fetch_once() * 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nakika::bench;
  json_reporter json("bench_table2_micro", argc, argv);

  print_header("Table 1 — micro-benchmark configurations",
               "Na Kika (NSDI '06), Table 1");
  std::printf(
      "  Proxy    a regular (plain) proxy cache\n"
      "  DHT      the proxy with an integrated DHT (2 peer nodes)\n"
      "  Admin    Na Kika node, both administrative stages match one\n"
      "           predicate and run empty event handlers\n"
      "  Pred-n   Admin plus a site stage evaluating n policy objects,\n"
      "           none matching\n"
      "  Match-1  Admin plus a site stage with one matching predicate and\n"
      "           empty event handlers\n");

  print_header(
      "Table 2 — latency (ms) for a static 2,096-byte page, cold vs warm cache",
      "Na Kika (NSDI '06), Table 2 "
      "(paper: Proxy 3/1, DHT 5/1, Admin 16/2, Pred-0 19/2, Pred-1 20/2, "
      "Match-1 21/2, Pred-10 22/2, Pred-50 30/2, Pred-100 41/2)");

  print_row("Configuration", {"Cold (ms)", "Warm (ms)"});
  print_row("-------------", {"---------", "---------"});

  struct spec {
    std::string name;
    bool dht;
    bool admin;
    std::optional<std::string> site_script;
  };
  const spec specs[] = {
      {"Proxy", false, false, std::nullopt},
      {"DHT", true, false, std::nullopt},
      {"Admin", false, true, std::nullopt},
      {"Pred-0", false, true, pred_site_script(0, false)},
      {"Pred-1", false, true, pred_site_script(1, false)},
      {"Match-1", false, true, pred_site_script(0, true)},
      {"Pred-10", false, true, pred_site_script(10, false)},
      {"Pred-50", false, true, pred_site_script(50, false)},
      {"Pred-100", false, true, pred_site_script(100, false)},
  };
  for (const spec& s : specs) {
    const config_run r = run_config(s.name, s.dht, s.admin, s.site_script);
    print_row(s.name, {num(r.cold_ms, 1), num(r.warm_ms, 1)});
    json.add(s.name, "cold_ms", r.cold_ms);
    json.add(s.name, "warm_ms", r.warm_ms);
  }

  std::printf(
      "\nshape checks: DHT > Proxy (cold), Admin adds scripting-pipeline cost,\n"
      "Pred-n grows with n (script fetch + parse dominate cold), warm-cache\n"
      "latencies collapse to a small constant for every configuration.\n");
  return 0;
}
