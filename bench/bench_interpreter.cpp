// Script-engine microbenchmark: the tree-walking interpreter vs the bytecode
// VM on loop-, call-, string-, and property-heavy scripts (the shapes that
// dominate request-path stages). Reports per-run execution time, the
// VM speedup, and the one-time parse/compile split that the compiled-chunk
// cache amortizes away. Exits non-zero if the engines disagree on any
// workload's result, so the smoke run in CI doubles as a correctness check.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "js/compiler.hpp"
#include "js/interpreter.hpp"
#include "js/parser.hpp"
#include "js/vm.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct workload {
  const char* name;
  const char* source;
};

// Each script is shaped like a real stage script: the hot work lives inside a
// handler function (paper §3: stages publish onRequest/onResponse handlers),
// which is exactly where the compiler's local-slot resolution applies. Every
// script is idempotent (safe to re-run in a reused context) and leaves a
// deterministic value in the global `result`.
const workload workloads[] = {
    {"loop_heavy", R"JS(
        onRequest = function() {
          var s = 0;
          for (var i = 0; i < 60000; i++) {
            s = s + (i & 1023) - ((i * 7) % 13);
            if (s > 1000000) s = s - 1000000;
          }
          var j = 0;
          while (j < 20000) { s = s ^ (j & 255); j++; }
          return s;
        };
        result = onRequest();
    )JS"},
    {"call_heavy", R"JS(
        function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
        function make_adder(k) { return function(x) { return x + k; }; }
        onRequest = function() {
          var add3 = make_adder(3);
          var acc = fib(17);
          for (var i = 0; i < 8000; i++) acc = add3(acc) % 100000;
          return acc;
        };
        result = onRequest();
    )JS"},
    {"string_heavy", R"JS(
        onResponse = function() {
          var parts = [];
          for (var i = 0; i < 1200; i++) {
            var s = 'req-' + i + '-' + (i % 7);
            if (s.indexOf('3') >= 0) parts.push(s.toUpperCase());
          }
          var joined = parts.join(',');
          return joined.length + ':' + joined.split(',').length;
        };
        result = onResponse();
    )JS"},
    {"property_heavy", R"JS(
        onResponse = function() {
          var table = {};
          for (var i = 0; i < 600; i++) table['k' + (i % 97)] = {hits: 0, id: i};
          for (var round = 0; round < 40; round++) {
            for (var k in table) { table[k].hits++; }
          }
          var total = 0;
          for (var k2 in table) total += table[k2].hits;
          return total;
        };
        result = onResponse();
    )JS"},
    // Stable-shape state accessed through globals and repeated property
    // reads/writes: the inline-cache sweet spot (real stages keep counters
    // and config objects exactly like this).
    {"global_prop_heavy", R"JS(
        var state = {hits: 0, evictions: 0, total: 0};
        var threshold = 500000;
        onRequest = function() {
          for (var i = 0; i < 30000; i++) {
            state.hits++;
            state.total = state.total + (i & 127);
            if (state.total > threshold) { state.evictions++; state.total = 0; }
          }
          return state.hits + ':' + state.evictions + ':' + state.total;
        };
        result = onRequest();
    )JS"},
    // A stream of four distinct object layouts through ONE hot access site:
    // the polymorphic-inline-cache case (a handler that sees request objects
    // minted by several upstream stages). Monomorphic caches thrash here;
    // a 4-way cache holds all four shapes.
    {"poly_prop_heavy", R"JS(
        function make_a(i) { return {kind: 1, v: i, pad_a: 0}; }
        function make_b(i) { return {kind: 2, pad_b: 0, v: i}; }
        function make_c(i) { return {tag: 9, kind: 3, v: i}; }
        function make_d(i) { return {kind: 4, x: 0, y: 0, v: i}; }
        onRequest = function() {
          var objs = [];
          for (var i = 0; i < 400; i++) {
            var m = i % 4;
            if (m == 0) objs.push(make_a(i));
            else if (m == 1) objs.push(make_b(i));
            else if (m == 2) objs.push(make_c(i));
            else objs.push(make_d(i));
          }
          var total = 0;
          for (var round = 0; round < 150; round++) {
            for (var j = 0; j < 400; j++) {
              var o = objs[j];
              total = total + o.v + o.kind;
              o.v = o.v + 1;
            }
            if (total > 100000000) total = total - 100000000;
          }
          return total;
        };
        result = onRequest();
    )JS"},
};

// Perf-gate floors. The property floors are the targets for the shapes +
// polymorphic-IC + threaded-dispatch work; the loop/call baselines are the
// pre-shapes BENCH_vm.json vm_speedup values, pinned so the dispatch rework
// can never quietly regress the workloads that were already fast (the
// checked-in JSON tracks current, higher numbers).
constexpr double property_heavy_floor = 1.5;
constexpr double poly_prop_heavy_floor = 1.5;
constexpr double loop_heavy_baseline = 2.26054884;   // pre-shapes vm_speedup
constexpr double call_heavy_baseline = 3.10203874;   // pre-shapes vm_speedup
constexpr double regression_slack = 0.95;

struct engine_measurement {
  double per_run_seconds = 0.0;
  double parse_seconds = 0.0;
  double compile_seconds = 0.0;
  std::string result;
};

// Timing is best-of-N batches: scheduling noise and frequency dips only ever
// ADD time, so the minimum batch mean is the least-contaminated estimate of
// the engine's real cost. A single mean over all reps let one preempted run
// swing short workloads (~1-2 ms/run) by 30%.
constexpr int timing_batches = 4;

engine_measurement run_tree(const workload& w, int reps) {
  engine_measurement m;
  auto t0 = clock_type::now();
  const nakika::js::program_ptr prog = nakika::js::parse_program(w.source, w.name);
  m.parse_seconds = seconds_since(t0);

  nakika::js::context_limits limits;
  limits.ops = 0;  // benchmark the engine, not the budget
  nakika::js::context ctx(limits);
  double best = 0.0;
  for (int b = 0; b < timing_batches; ++b) {
    t0 = clock_type::now();
    for (int i = 0; i < reps; ++i) {
      ctx.reset_for_reuse();
      nakika::js::interpreter in(ctx);
      in.run(prog);
    }
    const double batch = seconds_since(t0) / reps;
    if (b == 0 || batch < best) best = batch;
  }
  m.per_run_seconds = best;
  m.result = ctx.global()->get("result").to_string();
  return m;
}

engine_measurement run_vm(const workload& w, int reps, std::size_t gc_watermark) {
  engine_measurement m;
  auto t0 = clock_type::now();
  const nakika::js::program_ptr prog = nakika::js::parse_program(w.source, w.name);
  m.parse_seconds = seconds_since(t0);
  t0 = clock_type::now();
  const nakika::js::compiled_program_ptr chunk = nakika::js::compile_program(prog);
  m.compile_seconds = seconds_since(t0);

  nakika::js::context_limits limits;
  limits.ops = 0;
  limits.gc_watermark = gc_watermark;
  nakika::js::context ctx(limits);
  double best = 0.0;
  for (int b = 0; b < timing_batches; ++b) {
    t0 = clock_type::now();
    for (int i = 0; i < reps; ++i) {
      ctx.reset_for_reuse();
      nakika::js::run_program(ctx, chunk);
    }
    const double batch = seconds_since(t0) / reps;
    if (b == 0 || batch < best) best = batch;
  }
  m.per_run_seconds = best;
  m.result = ctx.global()->get("result").to_string();
  return m;
}

// --profile-pairs: run every workload once on the VM with the dynamic
// (opcode, next-opcode) histogram armed and print the hottest pairs. This is
// the measurement that picked the fused superinstructions in bytecode.hpp —
// rerun it after compiler changes to check the fusion set still matches
// reality. Fusion is disabled for the profiled run so the histogram shows
// the raw pair stream, not the already-fused one.
int profile_pairs() {
  using nakika::js::opcode_count;
  std::vector<std::uint64_t> total(opcode_count * opcode_count, 0);
  std::printf("dynamic opcode-pair profile (per workload, unfused bytecode)\n");
  for (const workload& w : workloads) {
    const nakika::js::program_ptr prog = nakika::js::parse_program(w.source, w.name);
    const nakika::js::compiled_program_ptr chunk =
        nakika::js::compile_program(prog, nakika::js::compile_options{/*fuse=*/false});
    nakika::js::context_limits limits;
    limits.ops = 0;
    nakika::js::context ctx(limits);
    ctx.enable_pair_profile();
    nakika::js::run_program(ctx, chunk);
    const std::uint64_t* hist = ctx.pair_profile_data();
    if (hist == nullptr) continue;
    std::vector<std::size_t> idx;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < total.size(); ++i) {
      total[i] += hist[i];
      sum += hist[i];
      if (hist[i] != 0) idx.push_back(i);
    }
    std::sort(idx.begin(), idx.end(),
              [hist](std::size_t a, std::size_t b) { return hist[a] > hist[b]; });
    std::printf("\n%s (%llu dispatches):\n", w.name,
                static_cast<unsigned long long>(sum));
    for (std::size_t r = 0; r < idx.size() && r < 10; ++r) {
      const std::size_t i = idx[r];
      std::printf("  %-18s -> %-18s %10llu  (%.1f%%)\n",
                  nakika::js::opcode_name(static_cast<nakika::js::opcode>(i / opcode_count)),
                  nakika::js::opcode_name(static_cast<nakika::js::opcode>(i % opcode_count)),
                  static_cast<unsigned long long>(hist[i]),
                  sum > 0 ? 100.0 * static_cast<double>(hist[i]) / static_cast<double>(sum)
                          : 0.0);
    }
  }
  std::vector<std::size_t> idx;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < total.size(); ++i) {
    sum += total[i];
    if (total[i] != 0) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(),
            [&total](std::size_t a, std::size_t b) { return total[a] > total[b]; });
  std::printf("\nall workloads combined (%llu dispatches):\n",
              static_cast<unsigned long long>(sum));
  for (std::size_t r = 0; r < idx.size() && r < 20; ++r) {
    const std::size_t i = idx[r];
    std::printf("  %-18s -> %-18s %10llu  (%.1f%%)\n",
                nakika::js::opcode_name(static_cast<nakika::js::opcode>(i / opcode_count)),
                nakika::js::opcode_name(static_cast<nakika::js::opcode>(i % opcode_count)),
                static_cast<unsigned long long>(total[i]),
                sum > 0 ? 100.0 * static_cast<double>(total[i]) / static_cast<double>(sum)
                        : 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (nakika::bench::has_flag(argc, argv, "--profile-pairs")) return profile_pairs();
  const bool smoke = nakika::bench::has_flag(argc, argv, "--smoke");
  // Perf gate for CI: fail outright if call-heavy VM throughput ever drops
  // below the tree-walker (the regression the frame arena + inline caches
  // exist to prevent).
  const bool gate = nakika::bench::has_flag(argc, argv, "--gate");
  const int reps = smoke ? 2 : 12;
  nakika::bench::json_reporter json("bench_interpreter", argc, argv);

  nakika::bench::print_header(
      "Script engine: tree-walking interpreter vs bytecode VM",
      "per-request execution cost, paper SS4 (sandboxed evaluation on the request path)");
  nakika::bench::print_row("workload",
                           {"tree ms/run", "vm ms/run", "speedup", "parse ms", "compile ms"});

  bool mismatch = false;
  bool loop_heavy_2x = false;
  double call_heavy_speedup = 0.0;
  double loop_heavy_speedup = 0.0;
  double property_heavy_speedup = 0.0;
  double poly_prop_heavy_speedup = 0.0;
  for (const workload& w : workloads) {
    // Pilot run sizes the timing batches: sub-millisecond workloads need far
    // more reps than the default before a batch outlasts scheduler jitter
    // (target >= 40 ms per batch), while long workloads keep the default.
    int w_reps = reps;
    if (!smoke) {
      const engine_measurement pilot =
          run_vm(w, 1, nakika::js::context_limits{}.gc_watermark);
      const double per_run = std::max(pilot.per_run_seconds, 1e-6);
      w_reps = std::clamp(static_cast<int>(0.04 / per_run), reps, 256);
    }
    const engine_measurement tree = run_tree(w, w_reps);
    const engine_measurement vm = run_vm(w, w_reps, nakika::js::context_limits{}.gc_watermark);
    const double speedup =
        vm.per_run_seconds > 0 ? tree.per_run_seconds / vm.per_run_seconds : 0.0;
    nakika::bench::print_row(
        w.name, {nakika::bench::ms(tree.per_run_seconds, 2),
                 nakika::bench::ms(vm.per_run_seconds, 2),
                 nakika::bench::num(speedup, 2) + "x", nakika::bench::ms(vm.parse_seconds, 2),
                 nakika::bench::ms(vm.compile_seconds, 2)});
    json.add(w.name, "tree_ms_per_run", tree.per_run_seconds * 1000.0);
    json.add(w.name, "vm_ms_per_run", vm.per_run_seconds * 1000.0);
    json.add(w.name, "vm_speedup", speedup);
    json.add(w.name, "compile_ms", vm.compile_seconds * 1000.0);
    if (tree.result != vm.result) {
      std::printf("ENGINE MISMATCH on %s: tree='%s' vm='%s'\n", w.name, tree.result.c_str(),
                  vm.result.c_str());
      mismatch = true;
    }
    if (std::strcmp(w.name, "loop_heavy") == 0 && speedup >= 2.0) loop_heavy_2x = true;
    if (std::strcmp(w.name, "loop_heavy") == 0) loop_heavy_speedup = speedup;
    if (std::strcmp(w.name, "call_heavy") == 0) call_heavy_speedup = speedup;
    if (std::strcmp(w.name, "property_heavy") == 0) property_heavy_speedup = speedup;
    if (std::strcmp(w.name, "poly_prop_heavy") == 0) poly_prop_heavy_speedup = speedup;
  }

  std::printf("\nchunk compile is one-time per content hash; the node's chunk cache\n"
              "amortizes it across sandboxes, so steady-state cost is the vm ms/run column.\n");
  if (mismatch) {
    std::printf("FAIL: engines disagree\n");
    return 1;
  }
  if (gate && call_heavy_speedup < 1.0) {
    std::printf("FAIL: call_heavy VM throughput below the tree-walker (%.2fx)\n",
                call_heavy_speedup);
    return 1;
  }
  if (gate && property_heavy_speedup < property_heavy_floor) {
    std::printf("FAIL: property_heavy speedup %.2fx below the %.2fx floor\n",
                property_heavy_speedup, property_heavy_floor);
    return 1;
  }
  if (gate && poly_prop_heavy_speedup < poly_prop_heavy_floor) {
    std::printf("FAIL: poly_prop_heavy speedup %.2fx below the %.2fx floor\n",
                poly_prop_heavy_speedup, poly_prop_heavy_floor);
    return 1;
  }
  if (gate && loop_heavy_speedup < regression_slack * loop_heavy_baseline) {
    std::printf("FAIL: loop_heavy speedup %.2fx regressed below 95%% of the %.2fx baseline\n",
                loop_heavy_speedup, loop_heavy_baseline);
    return 1;
  }
  if (gate && call_heavy_speedup < regression_slack * call_heavy_baseline) {
    std::printf("FAIL: call_heavy speedup %.2fx regressed below 95%% of the %.2fx baseline\n",
                call_heavy_speedup, call_heavy_baseline);
    return 1;
  }

  // Cycle-collector overhead gate: call_heavy with the default watermark must
  // keep >= 95% of the GC-off throughput. The safepoint check is two loads on
  // the fuel path; anything worse than 5% here means the collector leaked
  // work into the hot loop.
  {
    const workload* call_heavy = nullptr;
    for (const workload& cand : workloads) {
      if (std::strcmp(cand.name, "call_heavy") == 0) call_heavy = &cand;
    }
    const workload& w = *call_heavy;
    const int gc_reps = smoke ? 4 : 20;
    const engine_measurement gc_off = run_vm(w, gc_reps, /*gc_watermark=*/0);
    const engine_measurement gc_on =
        run_vm(w, gc_reps, nakika::js::context_limits{}.gc_watermark);
    const double ratio =
        gc_on.per_run_seconds > 0 ? gc_off.per_run_seconds / gc_on.per_run_seconds : 0.0;
    std::printf("\ngc overhead (call_heavy): off=%s on=%s throughput=%.1f%% of GC-off\n",
                nakika::bench::ms(gc_off.per_run_seconds, 2).c_str(),
                nakika::bench::ms(gc_on.per_run_seconds, 2).c_str(), ratio * 100.0);
    json.add("call_heavy", "gc_on_ms_per_run", gc_on.per_run_seconds * 1000.0);
    json.add("call_heavy", "gc_off_ms_per_run", gc_off.per_run_seconds * 1000.0);
    json.add("call_heavy", "gc_throughput_ratio", ratio);
    if (gate && ratio < 0.95) {
      std::printf("FAIL: GC-on call_heavy throughput below 95%% of GC-off (%.1f%%)\n",
                  ratio * 100.0);
      return 1;
    }
  }
  if (!smoke && !loop_heavy_2x) {
    std::printf("WARN: VM speedup on loop_heavy below 2x target\n");
  }
  return 0;
}
